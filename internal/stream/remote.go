package stream

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"aspen/internal/data"
	"aspen/internal/vtime"
)

// This file is the multi-node half of the partition-parallel layer: a shard
// replica of a deployed plan may live in another engine process (another PC
// of the paper's architecture) behind a ShardConn instead of an in-process
// worker goroutine. One TCP connection per (deployment, worker) carries
// everything both ways — deploy specs, data batches, clock ticks, and
// flush/close barriers outward; result batches and acks back — so FIFO
// ordering on the connection gives the same guarantees the in-process
// queues do: a barrier ack arrives behind every result its data produced.
//
// With failover enabled (shard.go), each connection additionally keeps a
// coordinator-side replay log of every frame sent and every result received
// since the last committed checkpoint, and periodically asks the worker for
// a checkpoint of its replica states. The FIFO position of the checkpoint
// frame makes both logs exact: everything before it is subsumed by the
// returned state, everything after it is what a redeployed replica must
// undo (results) and replay (inputs).

// remoteInflight bounds un-acked data/tick frames per connection: producers
// block when a worker falls this far behind (backpressure instead of
// unbounded kernel socket buffering).
const remoteInflight = 32

// remoteStallTimeout is the default bound on every wait on a worker that
// keeps its TCP session alive but stops responding: a peer that was never a
// shard worker (a mistyped address, a plain engine Server — both drop shard
// frames without acking), a SIGSTOPped worker process, or a blackholed link
// the kernel still ACKs. Credit waits, socket writes, and the deploy/flush/
// close barriers all mark the link broken (sticky) after it, so the
// coordinator's tick loop and Close can stall at most once per connection
// instead of deadlocking. The credit window bounds what a flush waits on
// (≤ remoteInflight frames), so a live worker has orders-of-magnitude
// headroom. Per-connection override: ShardConn.SetStallTimeout (plumbed
// from plan.CompileOptions.StallTimeout); variable for tests.
var remoteStallTimeout = 30 * time.Second

// ResultSender ships one batch of replica output tuples back to the
// coordinator. The batch slice is only valid during the call.
type ResultSender func(ts []data.Tuple) error

// DeployFunc builds one shard replica from an opaque spec (encoded by the
// plan layer), optionally restoring a checkpoint (nil state = fresh). It
// returns the replica's entry points keyed by the coordinator-chosen scan
// name, the replica's time-driven operators (windows), which tick frames
// advance on the connection's own goroutine, and the replica's stateful
// operators in deterministic order for checkpoint barriers.
type DeployFunc func(spec []byte, shard int, state []byte, send ResultSender) (heads map[string]Operator, advs []Advancer, cks []Checkpointer, err error)

// headKey names one replica entry point on a connection hosting several
// shards: the coordinator and worker derive it identically.
func headKey(shard int, name string) string { return fmt.Sprintf("%d/%s", shard, name) }

// ShardWorker hosts remote shard replicas: it accepts coordinator
// connections and serves the shard frame protocol — deploy builds replicas
// through the DeployFunc, data frames push into replica heads, tick frames
// advance replica windows, flush/close frames ack as barriers, checkpoint
// frames reply with the replicas' encoded operator states. All replica
// processing for one connection runs on that connection's decode goroutine,
// preserving the single-writer discipline replica operators rely on.
type ShardWorker struct {
	*connServer
	deploy DeployFunc
}

// NewShardWorker serves shard replicas on addr (use "127.0.0.1:0" for an
// ephemeral port).
func NewShardWorker(addr string, deploy DeployFunc) (*ShardWorker, error) {
	w := &ShardWorker{deploy: deploy}
	cs, err := newConnServer(addr, w.serveConn)
	if err != nil {
		return nil, fmt.Errorf("stream: shard worker: %w", err)
	}
	w.connServer = cs
	return w, nil
}

// serveConn drives one coordinator link: decode a frame, process it, ack
// it. Processing is synchronous, so by the time a barrier frame acks, every
// result its predecessors produced has already been encoded onto the
// connection.
func (w *ShardWorker) serveConn(conn net.Conn) {
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	// All writes — result batches emitted while processing a frame, and the
	// ack that follows — happen on this goroutine, so the encoder needs no
	// lock and the wire order (results before their barrier's ack) is a
	// structural guarantee.
	writeFrame := func(f frame) error { return enc.Encode(f) }
	send := ResultSender(func(ts []data.Tuple) error {
		if len(ts) == 0 {
			return nil
		}
		return writeFrame(frame{Kind: frameResult, Batch: ts})
	})

	heads := map[string]Operator{}
	var advs []Advancer
	cks := map[int][]Checkpointer{}
	for {
		var f frame
		if err := dec.Decode(&f); err != nil {
			// EOF, reset, or a malformed peer: the connection's replicas die
			// with it; other connections keep serving.
			return
		}
		switch f.Kind {
		case frameDeploy:
			h, a, ck, err := w.deploy(f.Spec, f.Shard, f.State, send)
			ack := frame{Kind: frameAck, Seq: f.Seq}
			if err != nil {
				ack.Err = err.Error()
			} else {
				for name, op := range h {
					heads[headKey(f.Shard, name)] = op
				}
				advs = append(advs, a...)
				cks[f.Shard] = ck
			}
			if writeFrame(ack) != nil {
				return
			}
		case frameData:
			// Unknown heads drop silently, mirroring Server: the coordinator
			// validated the deployment before opening the taps.
			if op, ok := heads[f.Input]; ok {
				if f.Batch != nil {
					PushBatch(op, f.Batch)
				} else {
					op.Push(f.Tuple)
				}
			}
			if writeFrame(frame{Kind: frameAck}) != nil {
				return
			}
		case frameTick:
			for _, a := range advs {
				a.Advance(f.Now)
			}
			if writeFrame(frame{Kind: frameAck}) != nil {
				return
			}
		case frameFlush:
			if writeFrame(frame{Kind: frameAck, Seq: f.Seq}) != nil {
				return
			}
		case frameCheckpoint:
			reply := frame{Kind: frameCkptState, Seq: f.Seq}
			payload, err := encodeWorkerCheckpoint(cks)
			if err != nil {
				reply.Err = err.Error()
			} else {
				reply.Spec = payload
			}
			if writeFrame(reply) != nil {
				return
			}
		case frameClose:
			// Drop the replicas; the coordinator closes the connection after
			// the ack.
			heads = map[string]Operator{}
			advs = nil
			cks = map[int][]Checkpointer{}
			if writeFrame(frame{Kind: frameAck, Seq: f.Seq}) != nil {
				return
			}
		}
	}
}

// logEntry is one replayable coordinator→worker frame: a data batch for a
// named replica head, or (Tick set) a clock instant for every replica on
// the connection.
type logEntry struct {
	shard int
	name  string
	batch []data.Tuple
	tick  bool
	now   vtime.Time
}

// connLog is the failover bookkeeping of one worker connection: the input
// replay log and output undo log since the last committed checkpoint, the
// last committed per-shard states, and the post-cutover redirect. in/out
// are bounded in steady state by the checkpoint cadence (ckEvery ticks or
// ckMaxLog entries, whichever comes first); between a failure and the end
// of its failover they grow with whatever producers push, which the
// exchange's bounded queues and the engine's tick cadence keep finite.
type connLog struct {
	mu      sync.Mutex
	in      []logEntry
	out     [][]data.Tuple
	mark    int            // in-log position of the in-flight checkpoint
	states  map[int][]byte // last committed checkpoint per shard
	dropped bool           // failover finished with this connection: stop accumulating
}

func (l *connLog) append(e logEntry) (size int) {
	l.mu.Lock()
	if l.dropped {
		l.mu.Unlock()
		return 0
	}
	l.in = append(l.in, e)
	size = len(l.in)
	l.mu.Unlock()
	return size
}

func (l *connLog) appendOut(batch []data.Tuple) {
	l.mu.Lock()
	l.out = append(l.out, batch)
	l.mu.Unlock()
}

// setMark records the current in-log length as the consistency point of the
// checkpoint frame about to be written. Caller holds the connection's write
// lock, so the mark and the frame take the same position in the FIFO order.
func (l *connLog) setMark() {
	l.mu.Lock()
	l.mark = len(l.in)
	l.mu.Unlock()
}

// commit installs a decoded worker checkpoint: entries before the mark and
// every output received so far (all FIFO-before the checkpoint reply) are
// subsumed by the states.
func (l *connLog) commit(payload []byte) error {
	states, err := decodeWorkerCheckpoint(payload)
	if err != nil {
		return err
	}
	l.mu.Lock()
	l.in = append(l.in[:0:0], l.in[l.mark:]...)
	l.mark = 0
	l.out = nil
	l.states = states
	l.mu.Unlock()
	return nil
}

// takeIn removes and returns every logged input entry.
func (l *connLog) takeIn() []logEntry {
	l.mu.Lock()
	in := l.in
	l.in = nil
	l.mark = 0
	l.mu.Unlock()
	return in
}

// takeOut removes and returns the output undo log.
func (l *connLog) takeOut() [][]data.Tuple {
	l.mu.Lock()
	out := l.out
	l.out = nil
	l.mu.Unlock()
	return out
}

// statesCopy snapshots the committed per-shard checkpoint states.
func (l *connLog) statesCopy() map[int][]byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[int][]byte, len(l.states))
	for j, s := range l.states {
		out[j] = s
	}
	return out
}

func (l *connLog) setState(shard int, state []byte) {
	l.mu.Lock()
	if l.states == nil {
		l.states = map[int][]byte{}
	}
	l.states[shard] = state
	l.mu.Unlock()
}

// drop ends the log's life: everything clears and later appends are
// no-ops (an abandoned connection's sends must not accumulate forever).
func (l *connLog) drop() {
	l.mu.Lock()
	l.dropped = true
	l.in = nil
	l.mark = 0
	l.out = nil
	l.states = nil
	l.mu.Unlock()
}

// ShardConn is the coordinator side of one deployment's link to a
// ShardWorker. Data batches and ticks consume bounded in-flight credits
// (acks release them); deploy, flush, close, and checkpoint are
// sequence-matched barriers. Result batches decoded by the reader goroutine
// push into the deployment's merge sink, so per-connection FIFO makes a
// flush ack a result-drain barrier too.
//
// A transport failure is sticky: every later send drops (with failover
// disabled the deployment's result simply stops updating from this worker,
// matching the engine's lossy-link convention) and every waiting barrier
// fails fast. With failover enabled, the first failure also notifies the
// owning ShardSet, post-failure sends keep landing in the replay log, and
// the set redeploys the connection's shards elsewhere (see shard.go).
type ShardConn struct {
	addr string
	conn net.Conn
	enc  *gob.Encoder
	wmu  sync.Mutex // serializes frame encodes (and log appends) across producers
	sink Operator   // result funnel (the deployment's Merge)

	credits chan struct{}
	wg      sync.WaitGroup

	// stall bounds every wait on an unresponsive worker; flog/onFail/ck*
	// are the failover extensions (flog nil = disabled, the PR-4 behavior).
	stall      time.Duration
	flog       *connLog
	onFail     func(*ShardConn)
	ckEvery    int
	ckMaxLog   int
	ticks      atomic.Int64
	ckInflight atomic.Bool

	mu     sync.Mutex
	seq    uint64
	waits  map[uint64]chan error
	err    error
	done   chan struct{} // closed once the link is broken
	closed bool
}

// DialShard connects a deployment to a ShardWorker; decoded result batches
// push into sink. The connect attempt itself is bounded by the default
// stall timeout (use dialShard to bound it tighter).
func DialShard(addr string, sink Operator) (*ShardConn, error) {
	return dialShard(addr, sink, remoteStallTimeout)
}

// dialShard is DialShard with an explicit connect + stall bound: a
// blackholed address fails within timeout instead of the kernel's connect
// default — the failover path dials while holding the deployment's locks,
// so every wait it performs must be bounded.
func dialShard(addr string, sink Operator, timeout time.Duration) (*ShardConn, error) {
	if timeout <= 0 {
		timeout = remoteStallTimeout
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("stream: dial shard worker %s: %w", addr, err)
	}
	c := &ShardConn{
		addr:    addr,
		conn:    conn,
		enc:     gob.NewEncoder(conn),
		sink:    sink,
		stall:   timeout,
		credits: make(chan struct{}, remoteInflight),
		waits:   map[uint64]chan error{},
		done:    make(chan struct{}),
	}
	for i := 0; i < remoteInflight; i++ {
		c.credits <- struct{}{}
	}
	c.wg.Add(1)
	go c.readLoop()
	return c, nil
}

// Addr returns the worker address this connection serves.
func (c *ShardConn) Addr() string { return c.addr }

// SetStallTimeout overrides the ack deadline for this connection: any flush
// ack, barrier ack, credit, or socket write outstanding longer than d marks
// the link broken — a stalled-but-connected worker becomes a detected
// failure instead of an indefinite hang. Call before the connection is in
// use; d <= 0 keeps the default.
func (c *ShardConn) SetStallTimeout(d time.Duration) {
	if d > 0 {
		c.stall = d
	}
}

// enableFailover turns on the replay/undo logs. Called by
// ShardSet.SetRemote (or the failover machinery for replacement
// connections) before any frame traffic.
func (c *ShardConn) enableFailover(ckEvery, ckMaxLog int) {
	c.flog = &connLog{}
	c.ckEvery = ckEvery
	c.ckMaxLog = ckMaxLog
}

// armFailover installs the sticky-failure notification. The set arms its
// connections only once it starts (a failure during compile aborts the
// compile instead); a failure that slipped in between is notified here, so
// it is delivered exactly once either way.
func (c *ShardConn) armFailover(onFail func(*ShardConn)) {
	c.mu.Lock()
	c.onFail = onFail
	missed := c.err != nil && !c.closed
	c.mu.Unlock()
	if missed {
		onFail(c)
	}
}

// Err reports the sticky transport failure, if any.
func (c *ShardConn) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// readLoop drains worker frames: results into the sink (and the undo log),
// credit acks back into the send budget, barrier acks to their waiters,
// checkpoint states into the log's committed snapshot.
func (c *ShardConn) readLoop() {
	defer c.wg.Done()
	dec := gob.NewDecoder(c.conn)
	for {
		var f frame
		if err := dec.Decode(&f); err != nil {
			c.fail(fmt.Errorf("stream: shard link %s: %w", c.addr, err))
			return
		}
		switch f.Kind {
		case frameResult:
			if c.flog != nil {
				c.flog.appendOut(f.Batch)
			}
			PushBatch(c.sink, f.Batch)
		case frameCkptState:
			// Decoded on the FIFO: every result before this reply is already
			// in the undo log, so committing here truncates both logs at the
			// exact consistency point of the checkpoint.
			var err error
			if f.Err != "" {
				err = fmt.Errorf("stream: shard worker %s: checkpoint: %s", c.addr, f.Err)
			} else if c.flog != nil {
				err = c.flog.commit(f.Spec)
			}
			c.deliverAck(f.Seq, err)
		case frameAck:
			if f.Seq == 0 {
				select {
				case c.credits <- struct{}{}:
				default: // worker double-ack: never block the reader
				}
				continue
			}
			var err error
			if f.Err != "" {
				err = fmt.Errorf("stream: shard worker %s: %s", c.addr, f.Err)
			}
			c.deliverAck(f.Seq, err)
		}
	}
}

// deliverAck hands a sequence-matched ack to its waiter.
func (c *ShardConn) deliverAck(seq uint64, err error) {
	c.mu.Lock()
	ch, ok := c.waits[seq]
	delete(c.waits, seq)
	c.mu.Unlock()
	if ok {
		ch <- err
	}
}

// fail records the first transport error, notifies the failover machinery,
// wakes every barrier waiter, and unblocks all senders. The notification
// runs before the waiters wake, so whoever observes a failed barrier (a
// Flush, a deploy) already finds the failover pending.
func (c *ShardConn) fail(err error) {
	c.mu.Lock()
	if c.err != nil {
		c.mu.Unlock()
		return
	}
	c.err = err
	close(c.done)
	notify := !c.closed && c.onFail != nil
	waits := c.waits
	c.waits = map[uint64]chan error{}
	c.mu.Unlock()
	if notify {
		c.onFail(c)
	}
	for _, ch := range waits {
		ch <- err
	}
}

// severLink tears the transport down and waits for the reader to exit, so
// no further results can reach the sink or the undo log. Idempotent; the
// failover machinery calls it before taking the logs.
func (c *ShardConn) severLink() {
	c.mu.Lock()
	var waits map[uint64]chan error
	if c.err == nil {
		// Stall-detected failures leave the socket open; close it so the
		// reader observes the failure too. Waiters wake like on any other
		// sticky failure, but the failover machinery (our caller) is not
		// re-notified.
		c.err = fmt.Errorf("stream: shard link %s: severed for failover", c.addr)
		close(c.done)
		waits = c.waits
		c.waits = map[uint64]chan error{}
	}
	c.mu.Unlock()
	for _, ch := range waits {
		ch <- c.Err()
	}
	c.conn.Close()
	c.wg.Wait()
}

// write encodes one frame under the write lock. The write deadline keeps
// a stalled peer with a full socket buffer from blocking the sender
// forever; a deadline miss breaks the link like any other write error.
func (c *ShardConn) write(f frame) error {
	if err := c.Err(); err != nil {
		return err // broken link: drop instead of touching the dead socket
	}
	c.wmu.Lock()
	err := c.writeLocked(f)
	c.wmu.Unlock()
	return err
}

// writeLocked is write with c.wmu already held.
func (c *ShardConn) writeLocked(f frame) error {
	c.conn.SetWriteDeadline(time.Now().Add(c.stall))
	err := c.enc.Encode(f)
	if err != nil {
		err = fmt.Errorf("stream: shard link %s: %w", c.addr, err)
		c.fail(err)
	}
	return err
}

// acquireCredit takes one in-flight credit, blocking while remoteInflight
// frames are un-acked. A worker that stops acking entirely fails the link
// after the stall timeout instead of wedging the sender (which may be the
// engine tick loop) under the set's lock. The uncontended path takes no
// timer (and allocates nothing).
func (c *ShardConn) acquireCredit() error {
	// Sticky failure: drop immediately, per the documented contract —
	// without this, a send could race the closed done channel, win a
	// leftover credit, and block on the dead socket's write deadline.
	if err := c.Err(); err != nil {
		return err
	}
	select {
	case <-c.credits:
	case <-c.done:
		return c.Err()
	default:
		// Credit window exhausted: wait, but never forever.
		stall := time.NewTimer(c.stall)
		select {
		case <-c.credits:
			stall.Stop()
		case <-c.done:
			stall.Stop()
			return c.Err()
		case <-stall.C:
			err := fmt.Errorf("stream: shard link %s: no ack in %s (worker stalled?)",
				c.addr, c.stall)
			c.fail(err)
			return err
		}
	}
	return nil
}

// sendCredit encodes a credit-consuming frame (data or tick). Without
// failover this is the whole send path; with it, sendEntry wraps the same
// steps around the replay log.
func (c *ShardConn) sendCredit(f frame) error {
	if err := c.acquireCredit(); err != nil {
		return err
	}
	return c.write(f)
}

// sendEntry ships one replayable frame. With failover enabled the entry is
// appended to the replay log under the write lock — the log order is the
// wire order — whether or not the link still delivers, so a redeployed
// replica can replay exactly what the lost worker was sent.
func (c *ShardConn) sendEntry(e logEntry, f frame) error {
	if c.flog == nil {
		return c.sendCredit(f)
	}
	live := c.Err() == nil
	if live && c.acquireCredit() != nil {
		live = false
	}
	c.wmu.Lock()
	size := c.flog.append(e)
	var err error
	if live && c.Err() == nil {
		err = c.writeLocked(f)
	} else {
		err = c.Err()
	}
	c.wmu.Unlock()
	if err == nil && size >= c.ckMaxLog && !c.ckInflight.Load() {
		// The replay log is getting long: checkpoint so it can truncate.
		// The Load is advisory (checkpoint re-checks under the CAS); it
		// keeps a fast producer from spawning a goroutine per batch while
		// one checkpoint round trip is already in flight.
		go c.checkpoint()
	}
	return err
}

// barrier encodes a sequence-matched frame and waits for its ack, marking
// the link broken if none comes within the stall timeout.
func (c *ShardConn) barrier(f frame) error {
	ch, seq, err := c.registerWait()
	if err != nil {
		return err
	}
	f.Seq = seq
	if err := c.write(f); err != nil {
		return err
	}
	return c.awaitAck(ch, "worker stalled, or not a shard worker?")
}

// registerWait allocates a barrier sequence number and its ack channel.
func (c *ShardConn) registerWait() (chan error, uint64, error) {
	ch := make(chan error, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, 0, err
	}
	c.seq++
	seq := c.seq
	c.waits[seq] = ch
	c.mu.Unlock()
	return ch, seq, nil
}

// awaitAck waits for a registered barrier ack under the stall deadline.
func (c *ShardConn) awaitAck(ch chan error, why string) error {
	stall := time.NewTimer(c.stall)
	defer stall.Stop()
	select {
	case err := <-ch:
		return err
	case <-stall.C:
		c.fail(fmt.Errorf("stream: shard link %s: no barrier ack in %s (%s)",
			c.addr, c.stall, why))
		// fail delivered the error to every registered waiter — but the
		// real ack may have raced the timeout and buffered nil into ch
		// first. The link is broken either way now, so never report
		// success here.
		if err := <-ch; err != nil {
			return err
		}
		return c.Err()
	}
}

// Deploy ships a replica spec for the given shard, with an optional
// checkpoint to restore (nil = fresh), and waits for the worker's compile
// to succeed or fail. A successful deploy records the state as the shard's
// committed checkpoint, so a failover chain never loses the state a replica
// was seeded with.
func (c *ShardConn) Deploy(spec []byte, shard int, state []byte) error {
	err := c.barrier(frame{Kind: frameDeploy, Spec: spec, Shard: shard, State: state})
	if err == nil && c.flog != nil {
		c.flog.setState(shard, state)
	}
	return err
}

// checkpoint runs one checkpoint barrier: it marks the replay-log position
// under the write lock (the FIFO consistency point), asks the worker for
// its replica states, and lets the read loop commit them. At most one
// checkpoint is in flight per connection; failures leave the logs intact
// (the next failover simply replays more).
func (c *ShardConn) checkpoint() {
	if c.flog == nil || !c.ckInflight.CompareAndSwap(false, true) {
		return
	}
	defer c.ckInflight.Store(false)
	ch, seq, err := c.registerWait()
	if err != nil {
		return
	}
	c.wmu.Lock()
	if c.Err() != nil {
		c.wmu.Unlock()
		return
	}
	c.flog.setMark()
	err = c.writeLocked(frame{Kind: frameCheckpoint, Seq: seq})
	c.wmu.Unlock()
	if err != nil {
		return
	}
	_ = c.awaitAck(ch, "checkpoint unanswered")
}

// Checkpoint runs one synchronous checkpoint barrier (tests and shutdown
// paths; steady-state checkpoints self-schedule off the tick cadence).
func (c *ShardConn) Checkpoint() {
	c.checkpoint()
}

// SendBatch ships one data batch to the named replica head of a shard.
// After it returns, the batch buffer may be reused: gob has copied the
// tuples onto the wire (and the replay log keeps only the tuples, which the
// pipeline owns).
func (c *ShardConn) SendBatch(shard int, name string, ts []data.Tuple) error {
	if len(ts) == 0 {
		return nil
	}
	return c.sendShard(shard, name, headKey(shard, name), ts)
}

// sendShard is SendBatch with the wire key precomposed (RemoteHead caches
// it, keeping the exchange's per-batch path free of formatting
// allocations).
func (c *ShardConn) sendShard(shard int, name, key string, ts []data.Tuple) error {
	if len(ts) == 0 {
		return nil
	}
	var e logEntry
	if c.flog != nil {
		// The pipeline owns pushed tuples (nobody mutates them after the
		// send), so the log retains them without cloning values.
		e = logEntry{shard: shard, name: name, batch: append([]data.Tuple(nil), ts...)}
	}
	return c.sendEntry(e, frame{Kind: frameData, Input: key, Batch: ts})
}

// Tick advances every replica window deployed over this connection, and
// paces the checkpoint cadence: every ckEvery-th tick schedules an
// asynchronous checkpoint barrier.
func (c *ShardConn) Tick(now vtime.Time) error {
	err := c.sendEntry(logEntry{tick: true, now: now}, frame{Kind: frameTick, Now: now})
	if c.flog != nil && c.ckEvery > 0 && c.ticks.Add(1)%int64(c.ckEvery) == 0 && !c.ckInflight.Load() {
		go c.checkpoint()
	}
	return err
}

// Flush barriers the connection: when it returns nil, every batch and tick
// sent before the call has been processed by the worker and every result it
// produced has been pushed into the sink.
func (c *ShardConn) Flush() error {
	return c.barrier(frame{Kind: frameFlush})
}

// Close barriers outstanding work, tears the replicas down on the worker,
// and closes the connection. Safe to call on a broken link. Idempotent.
func (c *ShardConn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.barrier(frame{Kind: frameClose})
	c.conn.Close()
	c.wg.Wait()
	return err
}

// RemoteHead is the coordinator-side stand-in for a replica entry point
// hosted on a ShardWorker: pushes ship to the worker-registered head it
// names (the wire key is precomposed once here). The ShardSet routes
// batches through it without a local queue.
type RemoteHead struct {
	schema *data.Schema
	conn   *ShardConn
	shard  int
	name   string
	key    string
}

// Head builds the stand-in for the named entry point of a shard deployed
// over this connection.
func (c *ShardConn) Head(schema *data.Schema, shard int, name string) *RemoteHead {
	return &RemoteHead{schema: schema, conn: c, shard: shard, name: name, key: headKey(shard, name)}
}

// Schema implements Operator.
func (h *RemoteHead) Schema() *data.Schema { return h.schema }

// Push implements Operator: the tuple ships as a singleton batch.
func (h *RemoteHead) Push(t data.Tuple) {
	batch := [1]data.Tuple{t}
	_ = h.conn.sendShard(h.shard, h.name, h.key, batch[:])
}

// PushBatch implements BatchOperator.
func (h *RemoteHead) PushBatch(ts []data.Tuple) {
	_ = h.conn.sendShard(h.shard, h.name, h.key, ts)
}
