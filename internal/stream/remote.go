package stream

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"aspen/internal/data"
	"aspen/internal/vtime"
)

// This file is the multi-node half of the partition-parallel layer: a shard
// replica of a deployed plan may live in another engine process (another PC
// of the paper's architecture) behind a ShardConn instead of an in-process
// worker goroutine. One physical TCP connection per (coordinator, worker)
// carries every deployment between the two, multiplexed by per-deployment
// stream ids (mux.go); a ShardConn is one such stream. Everything travels
// both ways over it — deploy specs, data batches, clock ticks, and
// flush/close barriers outward; result batches and acks back — in the
// binary columnar wire format (wire.go). FIFO ordering per stream gives
// the same guarantees the in-process queues do: a barrier ack arrives
// behind every result its data produced.
//
// With failover enabled (shard.go), each stream additionally keeps a
// coordinator-side replay log of every frame sent and every result received
// since the last committed checkpoint, and periodically asks the worker for
// a checkpoint of its replica states. The FIFO position of the checkpoint
// frame makes both logs exact: everything before it is subsumed by the
// returned state, everything after it is what a redeployed replica must
// undo (results) and replay (inputs).

// remoteInflight bounds un-acked data/tick frames per stream: producers
// block when a worker falls this far behind (backpressure instead of
// unbounded kernel socket buffering).
const remoteInflight = 32

// workerAckEvery bounds credit-ack latency under sustained input: the
// worker normally coalesces credit acks until its input drains, but a
// connection whose other streams keep it busy must not starve one
// stream's credit window, so acks also flush every this many processed
// credit frames.
const workerAckEvery = 16

// remoteStallTimeout is the default bound on every wait on a worker that
// keeps its TCP session alive but stops responding: a peer that was never a
// shard worker (a mistyped address, a plain engine Server — both drop shard
// frames without acking), a SIGSTOPped worker process, or a blackholed link
// the kernel still ACKs. Credit waits, socket writes, and the deploy/flush/
// close barriers all mark the link broken (sticky) after it, so the
// coordinator's tick loop and Close can stall at most once per connection
// instead of deadlocking. The credit window bounds what a flush waits on
// (≤ remoteInflight frames), so a live worker has orders-of-magnitude
// headroom. Per-connection override: ShardConn.SetStallTimeout (plumbed
// from plan.CompileOptions.StallTimeout); variable for tests.
var remoteStallTimeout = 30 * time.Second

// ResultSender ships one batch of replica output tuples back to the
// coordinator. The batch slice is only valid during the call.
type ResultSender func(ts []data.Tuple) error

// DeployFunc builds one shard replica from an opaque spec (encoded by the
// plan layer), optionally restoring a checkpoint (nil state = fresh). It
// returns the replica's entry points keyed by the coordinator-chosen scan
// name, the replica's time-driven operators (windows), which tick frames
// advance on the connection's own goroutine, and the replica's stateful
// operators in deterministic order for checkpoint barriers.
type DeployFunc func(spec []byte, shard int, state []byte, send ResultSender) (heads map[string]Operator, advs []Advancer, cks []Checkpointer, err error)

// headKey names one replica entry point on a stream hosting several
// shards: the coordinator and worker derive it identically.
func headKey(shard int, name string) string { return fmt.Sprintf("%d/%s", shard, name) }

// deployBody is the gob payload of a deploy frame — the one remaining
// gob-encoded frame body (replica specs are cold-path, deeply structured,
// and already gob inside Spec anyway).
type deployBody struct {
	Seq   uint64
	Shard int
	Spec  []byte
	State []byte
}

// ShardWorker hosts remote shard replicas: it accepts coordinator
// connections and serves the shard frame protocol — deploy builds replicas
// through the DeployFunc, data frames push into replica heads, tick frames
// advance replica windows, flush/close frames ack as barriers, checkpoint
// frames reply with the replicas' encoded operator states. One connection
// carries many deployments, each under its own stream id with its own
// replica registry. All replica processing for one connection runs on that
// connection's decode goroutine, preserving the single-writer discipline
// replica operators rely on.
type ShardWorker struct {
	*connServer
	deploy DeployFunc
}

// NewShardWorker serves shard replicas on addr (use "127.0.0.1:0" for an
// ephemeral port).
func NewShardWorker(addr string, deploy DeployFunc) (*ShardWorker, error) {
	w := &ShardWorker{deploy: deploy}
	cs, err := newConnServer(addr, w.serveConn)
	if err != nil {
		return nil, fmt.Errorf("stream: shard worker: %w", err)
	}
	w.connServer = cs
	return w, nil
}

// workerStream is the worker-side state of one deployment's stream: its
// replica registry and the credit acks it owes the coordinator. heads,
// advs and cks are all keyed (or prefixed) by shard, so one shard's
// replica can leave the stream (frameUndeploy, a rescale) without
// disturbing its siblings.
type workerStream struct {
	heads map[string]Operator
	advs  map[int][]Advancer
	cks   map[int][]Checkpointer
	send  ResultSender
	pend  int // processed-but-unacked credit frames
}

// serveConn drives one coordinator link: decode a frame, route it to its
// stream, process it. Processing is synchronous on this goroutine, so by
// the time a barrier frame acks, every result its predecessors produced
// has already been encoded onto the connection ahead of the ack.
//
// Writes are coalesced: result frames and credit acks accumulate in the
// connection's write buffer and flush when the input drains (nothing more
// is in flight to process first), at any barrier ack, past the buffer
// threshold, or every workerAckEvery credit frames — one syscall then
// carries an epoch's worth of results and acks.
func (w *ShardWorker) serveConn(conn net.Conn) {
	r := newWireReader(conn)
	wr := &wireWriter{conn: conn}
	streams := map[uint64]*workerStream{}
	var dec batchDecoder
	pendTotal := 0 // credit acks owed across all streams
	sinceAck := 0  // credit frames processed since the last ack flush

	// flushAcks emits every owed credit ack and flushes the buffer.
	flushAcks := func() error {
		for id, ws := range streams {
			if ws.pend > 0 {
				appendAckFrame(wr, id, 0, ws.pend, "")
				ws.pend = 0
			}
		}
		pendTotal = 0
		sinceAck = 0
		return wr.flush()
	}
	// getStream lazily creates per-stream state (deploy normally creates
	// it; a data frame racing a dropped stream still gets its credit
	// acked so the coordinator's window never leaks).
	getStream := func(id uint64) *workerStream {
		ws := streams[id]
		if ws == nil {
			ws = &workerStream{heads: map[string]Operator{}, advs: map[int][]Advancer{}, cks: map[int][]Checkpointer{}}
			ws.send = func(ts []data.Tuple) error {
				if len(ts) == 0 {
					return nil
				}
				m := wr.begin(frameResult)
				wr.buf = appendUvarint(wr.buf, id)
				wr.buf = appendBatch(wr.buf, ts)
				wr.end(m)
				if wr.buffered() >= wireFlushBytes {
					return wr.flush()
				}
				return nil
			}
			streams[id] = ws
		}
		return ws
	}

	for {
		if r.buffered() == 0 && (pendTotal > 0 || wr.buffered() > 0) {
			// Input drained: everything owed — results, credit acks — goes
			// out now, in one write.
			if flushAcks() != nil {
				return
			}
		}
		kind, body, err := r.next()
		if err != nil {
			// EOF, reset, or a malformed peer: the connection's replicas die
			// with it; other connections keep serving.
			return
		}
		br := &byteReader{b: body}
		id := br.uvarint()
		if br.fail {
			return
		}
		switch kind {
		case frameDeploy:
			var db deployBody
			if gob.NewDecoder(bytes.NewReader(br.rest())).Decode(&db) != nil {
				return
			}
			ws := getStream(id)
			h, a, ck, derr := w.deploy(db.Spec, db.Shard, db.State, ws.send)
			errs := ""
			if derr != nil {
				errs = derr.Error()
			} else {
				for name, op := range h {
					ws.heads[headKey(db.Shard, name)] = op
				}
				ws.advs[db.Shard] = a
				ws.cks[db.Shard] = ck
			}
			appendAckFrame(wr, id, db.Seq, 0, errs)
			if flushAcks() != nil {
				return
			}
		case frameData:
			key := br.bytes(int(br.uvarint()))
			batch, derr := dec.decode(br)
			if derr != nil || br.fail {
				return
			}
			ws := getStream(id)
			// Unknown heads drop silently, mirroring Server: the coordinator
			// validated the deployment before opening the taps.
			if op, ok := ws.heads[string(key)]; ok {
				PushBatch(op, batch)
			}
			ws.pend++
			pendTotal++
			sinceAck++
		case frameTick:
			now := vtimeFrom(br.u64())
			if br.fail {
				return
			}
			ws := getStream(id)
			for _, advs := range ws.advs {
				for _, a := range advs {
					a.Advance(now)
				}
			}
			ws.pend++
			pendTotal++
			sinceAck++
		case frameFlush:
			seq := br.uvarint()
			if br.fail {
				return
			}
			appendAckFrame(wr, id, seq, 0, "")
			if flushAcks() != nil {
				return
			}
		case frameCheckpoint:
			seq := br.uvarint()
			if br.fail {
				return
			}
			ws := getStream(id)
			payload, cerr := encodeWorkerCheckpoint(ws.cks)
			errs := ""
			if cerr != nil {
				errs = cerr.Error()
				payload = nil
			}
			m := wr.begin(frameCkptState)
			wr.buf = appendUvarint(wr.buf, id)
			wr.buf = appendUvarint(wr.buf, seq)
			wr.buf = appendWireString(wr.buf, errs)
			wr.buf = appendUvarint(wr.buf, uint64(len(payload)))
			wr.buf = append(wr.buf, payload...)
			wr.end(m)
			if flushAcks() != nil {
				return
			}
		case frameUndeploy:
			// One shard's replica leaves the stream (a rescale moved it);
			// its siblings keep serving under the same credits.
			seq := br.uvarint()
			shard := int(br.uvarint())
			if br.fail {
				return
			}
			if ws := streams[id]; ws != nil {
				prefix := fmt.Sprintf("%d/", shard)
				for k := range ws.heads {
					if strings.HasPrefix(k, prefix) {
						delete(ws.heads, k)
					}
				}
				delete(ws.advs, shard)
				delete(ws.cks, shard)
			}
			appendAckFrame(wr, id, seq, 0, "")
			if flushAcks() != nil {
				return
			}
		case frameClose:
			// Drop this stream's replicas; the other streams (and the
			// connection) live on until the coordinator's last deployment
			// releases it.
			seq := br.uvarint()
			if br.fail {
				return
			}
			if ws := streams[id]; ws != nil && ws.pend > 0 {
				appendAckFrame(wr, id, 0, ws.pend, "")
				pendTotal -= ws.pend
			}
			delete(streams, id)
			appendAckFrame(wr, id, seq, 0, "")
			if wr.flush() != nil {
				return
			}
		default:
			// Unknown frame kind: a non-protocol peer; drop the connection.
			return
		}
		if sinceAck >= workerAckEvery {
			// Sustained input on a busy connection: bound the coordinator's
			// credit-wait latency even though the input never drains.
			if flushAcks() != nil {
				return
			}
		}
	}
}

// appendAckFrame encodes one ack frame: seq matches a barrier (0 for
// pure credit acks), credits releases that many in-flight credits, errs
// reports a failed deploy/barrier.
func appendAckFrame(w *wireWriter, id, seq uint64, credits int, errs string) {
	m := w.begin(frameAck)
	w.buf = appendUvarint(w.buf, id)
	w.buf = appendUvarint(w.buf, seq)
	w.buf = appendUvarint(w.buf, uint64(credits))
	w.buf = appendWireString(w.buf, errs)
	w.end(m)
}

// logEntry is one replayable coordinator→worker frame: a data batch for a
// named replica head, or (Tick set) a clock instant for every replica on
// the stream.
type logEntry struct {
	shard int
	name  string
	batch []data.Tuple
	tick  bool
	now   vtime.Time
}

// connLog is the failover bookkeeping of one worker stream: the input
// replay log and output undo log since the last committed checkpoint, the
// last committed per-shard states, and the post-cutover redirect. in/out
// are bounded in steady state by the checkpoint cadence (ckEvery ticks or
// ckMaxLog entries, whichever comes first); between a failure and the end
// of its failover they grow with whatever producers push, which the
// exchange's bounded queues and the engine's tick cadence keep finite.
type connLog struct {
	mu      sync.Mutex
	in      []logEntry
	out     [][]data.Tuple
	mark    int            // in-log position of the in-flight checkpoint
	states  map[int][]byte // last committed checkpoint per shard
	dropped bool           // failover finished with this connection: stop accumulating
}

func (l *connLog) append(e logEntry) (size int) {
	l.mu.Lock()
	if l.dropped {
		l.mu.Unlock()
		return 0
	}
	l.in = append(l.in, e)
	size = len(l.in)
	l.mu.Unlock()
	return size
}

func (l *connLog) appendOut(batch []data.Tuple) {
	l.mu.Lock()
	l.out = append(l.out, batch)
	l.mu.Unlock()
}

// setMark records the current in-log length as the consistency point of the
// checkpoint frame about to be written. Caller holds the connection's write
// lock, so the mark and the frame take the same position in the FIFO order.
func (l *connLog) setMark() {
	l.mu.Lock()
	l.mark = len(l.in)
	l.mu.Unlock()
}

// commit installs a decoded worker checkpoint: entries before the mark and
// every output received so far (all FIFO-before the checkpoint reply) are
// subsumed by the states.
func (l *connLog) commit(payload []byte) error {
	states, err := decodeWorkerCheckpoint(payload)
	if err != nil {
		return err
	}
	l.mu.Lock()
	l.in = append(l.in[:0:0], l.in[l.mark:]...)
	l.mark = 0
	l.out = nil
	l.states = states
	l.mu.Unlock()
	return nil
}

// takeIn removes and returns every logged input entry.
func (l *connLog) takeIn() []logEntry {
	l.mu.Lock()
	in := l.in
	l.in = nil
	l.mark = 0
	l.mu.Unlock()
	return in
}

// takeOut removes and returns the output undo log.
func (l *connLog) takeOut() [][]data.Tuple {
	l.mu.Lock()
	out := l.out
	l.out = nil
	l.mu.Unlock()
	return out
}

// statesCopy snapshots the committed per-shard checkpoint states.
func (l *connLog) statesCopy() map[int][]byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[int][]byte, len(l.states))
	for j, s := range l.states {
		out[j] = s
	}
	return out
}

// dropShard forgets one shard's committed checkpoint: the shard moved to
// another home (rescale), so a later failover of this connection must not
// redeploy it here.
func (l *connLog) dropShard(shard int) {
	l.mu.Lock()
	delete(l.states, shard)
	l.mu.Unlock()
}

// pendingIn reports how many replay-log entries are not yet subsumed by a
// committed checkpoint; a quiesced stream that just checkpointed reads 0.
func (l *connLog) pendingIn() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.in)
}

func (l *connLog) setState(shard int, state []byte) {
	l.mu.Lock()
	if l.states == nil {
		l.states = map[int][]byte{}
	}
	l.states[shard] = state
	l.mu.Unlock()
}

// drop ends the log's life: everything clears and later appends are
// no-ops (an abandoned connection's sends must not accumulate forever).
func (l *connLog) drop() {
	l.mu.Lock()
	l.dropped = true
	l.in = nil
	l.mark = 0
	l.out = nil
	l.states = nil
	l.mu.Unlock()
}

// ShardConn is the coordinator side of one deployment's link to a
// ShardWorker: one stream on the pooled physical connection to that
// worker (mux.go). Data batches and ticks consume bounded in-flight
// credits (acks release them); deploy, flush, close, and checkpoint are
// sequence-matched barriers. Result batches decoded by the connection's
// reader goroutine push into the deployment's merge sink, so per-stream
// FIFO makes a flush ack a result-drain barrier too.
//
// A transport failure is sticky and link-wide: a worker that stalls or
// dies stalls every stream on the connection, so any failure fails them
// all. Every later send drops (with failover disabled the deployment's
// result simply stops updating from this worker, matching the engine's
// lossy-link convention) and every waiting barrier fails fast. With
// failover enabled, the first failure also notifies the owning ShardSet,
// post-failure sends keep landing in the replay log, and the set
// redeploys the stream's shards elsewhere (see shard.go).
type ShardConn struct {
	addr string
	pc   *physConn
	id   uint64
	sink Operator     // result funnel (the deployment's Merge)
	dec  batchDecoder // result decode scratch; reader goroutine only

	credits chan struct{}

	// stall bounds every wait on an unresponsive worker; flog/onFail/ck*
	// are the failover extensions (flog nil = disabled, the PR-4 behavior).
	stall      time.Duration
	flog       *connLog
	onFail     func(*ShardConn)
	ckEvery    int
	ckMaxLog   int
	ticks      atomic.Int64
	ckInflight atomic.Bool

	mu     sync.Mutex
	seq    uint64
	waits  map[uint64]chan error
	err    error
	done   chan struct{} // closed once the link is broken
	closed bool
}

// DialShard connects a deployment to a ShardWorker; decoded result batches
// push into sink. The physical connection comes from the process-wide pool
// — deployments to the same worker share one socket — so "dial" may just
// open a new stream on an existing connection. The connect attempt itself
// is bounded by the default stall timeout (use dialShard to bound it
// tighter).
func DialShard(addr string, sink Operator) (*ShardConn, error) {
	return dialShard(addr, sink, remoteStallTimeout)
}

// dialShard is DialShard with an explicit connect + stall bound: a
// blackholed address fails within timeout instead of the kernel's connect
// default — the failover path dials while holding the deployment's locks,
// so every wait it performs must be bounded.
func dialShard(addr string, sink Operator, timeout time.Duration) (*ShardConn, error) {
	if timeout <= 0 {
		timeout = remoteStallTimeout
	}
	pc, err := shardPool.get(addr, timeout)
	if err != nil {
		return nil, err
	}
	return pc.newStream(sink, timeout), nil
}

// Addr returns the worker address this connection serves.
func (c *ShardConn) Addr() string { return c.addr }

// SetStallTimeout overrides the ack deadline for this connection: any flush
// ack, barrier ack, credit, or socket write outstanding longer than d marks
// the link broken — a stalled-but-connected worker becomes a detected
// failure instead of an indefinite hang. Call before the connection is in
// use; d <= 0 keeps the default.
func (c *ShardConn) SetStallTimeout(d time.Duration) {
	if d > 0 {
		c.stall = d
	}
}

// enableFailover turns on the replay/undo logs. Called by
// ShardSet.SetRemote (or the failover machinery for replacement
// connections) before any frame traffic.
func (c *ShardConn) enableFailover(ckEvery, ckMaxLog int) {
	c.flog = &connLog{}
	c.ckEvery = ckEvery
	c.ckMaxLog = ckMaxLog
}

// armFailover installs the sticky-failure notification. The set arms its
// connections only once it starts (a failure during compile aborts the
// compile instead); a failure that slipped in between is notified here, so
// it is delivered exactly once either way.
func (c *ShardConn) armFailover(onFail func(*ShardConn)) {
	c.mu.Lock()
	c.onFail = onFail
	missed := c.err != nil && !c.closed
	c.mu.Unlock()
	if missed {
		onFail(c)
	}
}

// Err reports the sticky transport failure, if any.
func (c *ShardConn) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// handleFrame processes one worker frame dispatched by the physical
// connection's read loop: results into the sink (and the undo log),
// credit acks back into the send budget, barrier acks to their waiters,
// checkpoint states into the log's committed snapshot. Returns false on
// a malformed frame (which fails the whole link).
func (c *ShardConn) handleFrame(kind frameKind, br *byteReader) bool {
	switch kind {
	case frameResult:
		batch, err := c.dec.decode(br)
		if err != nil {
			return false
		}
		if len(batch) == 0 {
			return true
		}
		if c.flog != nil {
			// The decoder's tuple slice is per-frame scratch; the undo log
			// outlives the frame, so it keeps its own slice (the values and
			// their arenas are retained either way).
			c.flog.appendOut(append([]data.Tuple(nil), batch...))
		}
		PushBatch(c.sink, batch)
	case frameCkptState:
		seq := br.uvarint()
		errs := br.wireString()
		payload := br.bytes(int(br.uvarint()))
		if br.fail {
			return false
		}
		// Decoded on the FIFO: every result before this reply is already
		// in the undo log, so committing here truncates both logs at the
		// exact consistency point of the checkpoint.
		var err error
		if errs != "" {
			err = fmt.Errorf("stream: shard worker %s: checkpoint: %s", c.addr, errs)
		} else if c.flog != nil {
			err = c.flog.commit(payload)
		}
		c.deliverAck(seq, err)
	case frameAck:
		seq := br.uvarint()
		credits := br.uvarint()
		errs := br.wireString()
		if br.fail || credits > remoteInflight {
			return false
		}
		for i := uint64(0); i < credits; i++ {
			select {
			case c.credits <- struct{}{}:
			default: // worker over-ack: never block the reader
			}
		}
		if seq != 0 {
			var err error
			if errs != "" {
				err = fmt.Errorf("stream: shard worker %s: %s", c.addr, errs)
			}
			c.deliverAck(seq, err)
		}
	}
	return true
}

// deliverAck hands a sequence-matched ack to its waiter.
func (c *ShardConn) deliverAck(seq uint64, err error) {
	c.mu.Lock()
	ch, ok := c.waits[seq]
	delete(c.waits, seq)
	c.mu.Unlock()
	if ok {
		ch <- err
	}
}

// fail records the stream's sticky error, notifies the failover
// machinery, wakes every barrier waiter, and unblocks all senders. Only
// the physical connection's fail (which owns failure for the whole link)
// and newStream's dead-link check call it. The notification runs before
// the waiters wake, so whoever observes a failed barrier (a Flush, a
// deploy) already finds the failover pending.
func (c *ShardConn) fail(err error) {
	c.mu.Lock()
	if c.err != nil {
		c.mu.Unlock()
		return
	}
	c.err = err
	close(c.done)
	notify := !c.closed && c.onFail != nil
	waits := c.waits
	c.waits = map[uint64]chan error{}
	c.mu.Unlock()
	if notify {
		c.onFail(c)
	}
	for _, ch := range waits {
		ch <- err
	}
}

// severLink tears the physical transport down and waits for its reader to
// exit, so no further results can reach the sink or the undo log — of
// this stream or any sibling (a severed link is a failure for every
// deployment sharing it, each of which runs its own failover). Idempotent;
// the failover machinery calls it before taking the logs.
func (c *ShardConn) severLink() {
	c.pc.sever(fmt.Errorf("stream: shard link %s: severed for failover", c.addr))
}

// acquireCredit takes one in-flight credit, blocking while remoteInflight
// frames are un-acked. A worker that stops acking entirely fails the link
// after the stall timeout instead of wedging the sender (which may be the
// engine tick loop) under the set's lock. The uncontended path takes no
// timer (and allocates nothing).
func (c *ShardConn) acquireCredit() error {
	// Sticky failure: drop immediately, per the documented contract —
	// without this, a send could race the closed done channel, win a
	// leftover credit, and block on the dead socket's write deadline.
	if err := c.Err(); err != nil {
		return err
	}
	select {
	case <-c.credits:
	case <-c.done:
		return c.Err()
	default:
		// Credit window exhausted. Whatever is pending in the write buffer
		// must reach the worker first — the acks we are about to wait on
		// answer frames that may still be sitting there.
		c.pc.wmu.Lock()
		err := c.pc.flushLocked(true, c.stall)
		c.pc.wmu.Unlock()
		if err != nil {
			return err
		}
		// Now wait, but never forever.
		stall := time.NewTimer(c.stall)
		select {
		case <-c.credits:
			stall.Stop()
		case <-c.done:
			stall.Stop()
			return c.Err()
		case <-stall.C:
			err := fmt.Errorf("stream: shard link %s: no ack in %s (worker stalled?)",
				c.addr, c.stall)
			c.pc.fail(err)
			return err
		}
	}
	return nil
}

// sendFrame ships one credit-consuming, replayable frame (a data batch
// for key, or — tick true — a clock instant), encoding it into the shared
// write buffer under the link's write lock. With failover enabled the
// entry is appended to the replay log under the same lock — the log order
// is the wire order — whether or not the link still delivers, so a
// redeployed replica can replay exactly what the lost worker was sent.
// force flushes the buffer to the socket; otherwise frames coalesce until
// a flush point (threshold, tick, barrier, or a credit wait).
func (c *ShardConn) sendFrame(shard int, name, key string, ts []data.Tuple, tick bool, now vtime.Time, force bool) error {
	live := c.Err() == nil
	if live && c.acquireCredit() != nil {
		live = false
	}
	if c.flog == nil && !live {
		return c.Err()
	}
	pc := c.pc
	pc.wmu.Lock()
	var size int
	if c.flog != nil {
		e := logEntry{shard: shard, name: name, tick: tick, now: now}
		if !tick {
			// The pipeline owns pushed tuples (nobody mutates them after the
			// send), so the log retains them without cloning values.
			e.batch = append([]data.Tuple(nil), ts...)
		}
		size = c.flog.append(e)
	}
	var err error
	if live && c.Err() == nil {
		if tick {
			m := pc.w.begin(frameTick)
			pc.w.buf = appendUvarint(pc.w.buf, c.id)
			pc.w.buf = appendU64(pc.w.buf, uint64(now))
			pc.w.end(m)
		} else {
			m := pc.w.begin(frameData)
			pc.w.buf = appendUvarint(pc.w.buf, c.id)
			pc.w.buf = appendWireString(pc.w.buf, key)
			pc.w.buf = appendBatch(pc.w.buf, ts)
			pc.w.end(m)
		}
		err = pc.flushLocked(force, c.stall)
	} else {
		err = c.Err()
	}
	pc.wmu.Unlock()
	if err == nil && c.flog != nil && size >= c.ckMaxLog && !c.ckInflight.Load() {
		// The replay log is getting long: checkpoint so it can truncate.
		// The Load is advisory (checkpoint re-checks under the CAS); it
		// keeps a fast producer from spawning a goroutine per batch while
		// one checkpoint round trip is already in flight.
		go c.checkpoint()
	}
	return err
}

// writeSeqFrame encodes one sequence-carrying control frame (flush,
// close, checkpoint) and force-flushes: a barrier's waiter needs the
// frame on the wire before the stall clock means anything.
func (c *ShardConn) writeSeqFrame(kind frameKind, seq uint64) error {
	if err := c.Err(); err != nil {
		return err // broken link: drop instead of touching the dead socket
	}
	pc := c.pc
	pc.wmu.Lock()
	if err := c.Err(); err != nil {
		pc.wmu.Unlock()
		return err
	}
	m := pc.w.begin(kind)
	pc.w.buf = appendUvarint(pc.w.buf, c.id)
	pc.w.buf = appendUvarint(pc.w.buf, seq)
	pc.w.end(m)
	err := pc.flushLocked(true, c.stall)
	pc.wmu.Unlock()
	return err
}

// barrier encodes a sequence-matched frame and waits for its ack, marking
// the link broken if none comes within the stall timeout.
func (c *ShardConn) barrier(kind frameKind) error {
	ch, seq, err := c.registerWait()
	if err != nil {
		return err
	}
	if err := c.writeSeqFrame(kind, seq); err != nil {
		return err
	}
	return c.awaitAck(ch, "worker stalled, or not a shard worker?")
}

// registerWait allocates a barrier sequence number and its ack channel.
func (c *ShardConn) registerWait() (chan error, uint64, error) {
	ch := make(chan error, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, 0, err
	}
	c.seq++
	seq := c.seq
	c.waits[seq] = ch
	c.mu.Unlock()
	return ch, seq, nil
}

// awaitAck waits for a registered barrier ack under the stall deadline.
func (c *ShardConn) awaitAck(ch chan error, why string) error {
	stall := time.NewTimer(c.stall)
	defer stall.Stop()
	select {
	case err := <-ch:
		return err
	case <-stall.C:
		c.pc.fail(fmt.Errorf("stream: shard link %s: no barrier ack in %s (%s)",
			c.addr, c.stall, why))
		// fail delivered the error to every registered waiter — but the
		// real ack may have raced the timeout and buffered nil into ch
		// first. The link is broken either way now, so never report
		// success here.
		if err := <-ch; err != nil {
			return err
		}
		return c.Err()
	}
}

// Deploy ships a replica spec for the given shard, with an optional
// checkpoint to restore (nil = fresh), and waits for the worker's compile
// to succeed or fail. A successful deploy records the state as the shard's
// committed checkpoint, so a failover chain never loses the state a replica
// was seeded with.
func (c *ShardConn) Deploy(spec []byte, shard int, state []byte) error {
	ch, seq, err := c.registerWait()
	if err != nil {
		return err
	}
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(deployBody{Seq: seq, Shard: shard, Spec: spec, State: state}); err != nil {
		c.deliverAck(seq, nil) // unregister the orphaned wait
		return fmt.Errorf("stream: encode deploy: %w", err)
	}
	werr := func() error {
		if err := c.Err(); err != nil {
			return err
		}
		pc := c.pc
		pc.wmu.Lock()
		defer pc.wmu.Unlock()
		if err := c.Err(); err != nil {
			return err
		}
		m := pc.w.begin(frameDeploy)
		pc.w.buf = appendUvarint(pc.w.buf, c.id)
		pc.w.buf = append(pc.w.buf, body.Bytes()...)
		pc.w.end(m)
		return pc.flushLocked(true, c.stall)
	}()
	if werr != nil {
		return werr
	}
	err = c.awaitAck(ch, "worker stalled, or not a shard worker?")
	if err == nil && c.flog != nil {
		c.flog.setState(shard, state)
	}
	return err
}

// checkpoint runs one checkpoint barrier: it marks the replay-log position
// under the write lock (the FIFO consistency point), asks the worker for
// its replica states, and lets the read loop commit them. At most one
// checkpoint is in flight per stream; failures leave the logs intact
// (the next failover simply replays more).
func (c *ShardConn) checkpoint() {
	if c.flog == nil || !c.ckInflight.CompareAndSwap(false, true) {
		return
	}
	defer c.ckInflight.Store(false)
	_ = c.checkpointBarrier()
}

// checkpointSync runs one checkpoint barrier, waiting out any in-flight
// asynchronous checkpoint first — the rescale path needs a committed,
// up-to-the-quiesce checkpoint, not a best-effort one.
func (c *ShardConn) checkpointSync() error {
	if c.flog == nil {
		return fmt.Errorf("stream: shard link %s: checkpoint without a replay log", c.addr)
	}
	deadline := time.Now().Add(c.stall)
	for !c.ckInflight.CompareAndSwap(false, true) {
		if time.Now().After(deadline) {
			return fmt.Errorf("stream: shard link %s: checkpoint already in flight past the stall bound", c.addr)
		}
		time.Sleep(time.Millisecond)
	}
	defer c.ckInflight.Store(false)
	return c.checkpointBarrier()
}

// checkpointBarrier is the locked body of checkpoint/checkpointSync;
// caller holds the ckInflight flag.
func (c *ShardConn) checkpointBarrier() error {
	ch, seq, err := c.registerWait()
	if err != nil {
		return err
	}
	pc := c.pc
	pc.wmu.Lock()
	if err := c.Err(); err != nil {
		pc.wmu.Unlock()
		return err
	}
	c.flog.setMark()
	m := pc.w.begin(frameCheckpoint)
	pc.w.buf = appendUvarint(pc.w.buf, c.id)
	pc.w.buf = appendUvarint(pc.w.buf, seq)
	pc.w.end(m)
	err = pc.flushLocked(true, c.stall)
	pc.wmu.Unlock()
	if err != nil {
		return err
	}
	return c.awaitAck(ch, "checkpoint unanswered")
}

// Checkpoint runs one synchronous checkpoint barrier (tests and shutdown
// paths; steady-state checkpoints self-schedule off the tick cadence).
func (c *ShardConn) Checkpoint() {
	c.checkpoint()
}

// Undeploy tears one shard's replica down on the worker while the stream
// and its other shards keep serving, and forgets the shard's committed
// checkpoint — the rescale path's counterpart to Deploy.
func (c *ShardConn) Undeploy(shard int) error {
	ch, seq, err := c.registerWait()
	if err != nil {
		return err
	}
	werr := func() error {
		if err := c.Err(); err != nil {
			return err
		}
		pc := c.pc
		pc.wmu.Lock()
		defer pc.wmu.Unlock()
		if err := c.Err(); err != nil {
			return err
		}
		m := pc.w.begin(frameUndeploy)
		pc.w.buf = appendUvarint(pc.w.buf, c.id)
		pc.w.buf = appendUvarint(pc.w.buf, seq)
		pc.w.buf = appendUvarint(pc.w.buf, uint64(shard))
		pc.w.end(m)
		return pc.flushLocked(true, c.stall)
	}()
	if werr != nil {
		return werr
	}
	err = c.awaitAck(ch, "undeploy unanswered")
	if err == nil && c.flog != nil {
		c.flog.dropShard(shard)
	}
	return err
}

// SendBatch ships one data batch to the named replica head of a shard.
// After it returns, the batch buffer may be reused: the codec has copied
// the tuples into the wire buffer (and the replay log keeps only the
// tuples, which the pipeline owns).
func (c *ShardConn) SendBatch(shard int, name string, ts []data.Tuple) error {
	if len(ts) == 0 {
		return nil
	}
	return c.sendShard(shard, name, headKey(shard, name), ts)
}

// sendShard is SendBatch with the wire key precomposed (RemoteHead caches
// it, keeping the exchange's per-batch path free of formatting
// allocations). The frame coalesces in the write buffer until the next
// flush point — normally the tick that ends the epoch.
func (c *ShardConn) sendShard(shard int, name, key string, ts []data.Tuple) error {
	if len(ts) == 0 {
		return nil
	}
	return c.sendFrame(shard, name, key, ts, false, 0, false)
}

// Tick advances every replica window deployed over this stream, flushes
// the write buffer (a tick ends an epoch: everything it should see must
// reach the worker), and paces the checkpoint cadence: every ckEvery-th
// tick schedules an asynchronous checkpoint barrier.
func (c *ShardConn) Tick(now vtime.Time) error {
	err := c.sendFrame(0, "", "", nil, true, now, true)
	if c.flog != nil && c.ckEvery > 0 && c.ticks.Add(1)%int64(c.ckEvery) == 0 && !c.ckInflight.Load() {
		go c.checkpoint()
	}
	return err
}

// Flush barriers the stream: when it returns nil, every batch and tick
// sent before the call has been processed by the worker and every result it
// produced has been pushed into the sink.
func (c *ShardConn) Flush() error {
	return c.barrier(frameFlush)
}

// Close barriers outstanding work, tears this stream's replicas down on
// the worker, and releases the stream's reference on the pooled physical
// connection (the socket closes when the last deployment using this
// worker releases it). Safe to call on a broken link. Idempotent.
func (c *ShardConn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.barrier(frameClose)
	c.pc.dropStream(c)
	return err
}

// RemoteHead is the coordinator-side stand-in for a replica entry point
// hosted on a ShardWorker: pushes ship to the worker-registered head it
// names (the wire key is precomposed once here). The ShardSet routes
// batches through it without a local queue.
type RemoteHead struct {
	schema *data.Schema
	conn   *ShardConn
	shard  int
	name   string
	key    string
}

// Head builds the stand-in for the named entry point of a shard deployed
// over this connection.
func (c *ShardConn) Head(schema *data.Schema, shard int, name string) *RemoteHead {
	return &RemoteHead{schema: schema, conn: c, shard: shard, name: name, key: headKey(shard, name)}
}

// Schema implements Operator.
func (h *RemoteHead) Schema() *data.Schema { return h.schema }

// Push implements Operator: the tuple ships as a singleton batch.
func (h *RemoteHead) Push(t data.Tuple) {
	batch := [1]data.Tuple{t}
	_ = h.conn.sendShard(h.shard, h.name, h.key, batch[:])
}

// PushBatch implements BatchOperator.
func (h *RemoteHead) PushBatch(ts []data.Tuple) {
	_ = h.conn.sendShard(h.shard, h.name, h.key, ts)
}
