package stream

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"

	"aspen/internal/data"
	"aspen/internal/vtime"
)

// This file is the multi-node half of the partition-parallel layer: a shard
// replica of a deployed plan may live in another engine process (another PC
// of the paper's architecture) behind a ShardConn instead of an in-process
// worker goroutine. One TCP connection per (deployment, worker) carries
// everything both ways — deploy specs, data batches, clock ticks, and
// flush/close barriers outward; result batches and acks back — so FIFO
// ordering on the connection gives the same guarantees the in-process
// queues do: a barrier ack arrives behind every result its data produced.

// remoteInflight bounds un-acked data/tick frames per connection: producers
// block when a worker falls this far behind (backpressure instead of
// unbounded kernel socket buffering).
const remoteInflight = 32

// remoteStallTimeout bounds every wait on a worker that keeps its TCP
// session alive but stops responding: a peer that was never a shard worker
// (a mistyped address, a plain engine Server — both drop shard frames
// without acking), a SIGSTOPped worker process, or a blackholed link the
// kernel still ACKs. Credit waits, socket writes, and the deploy/flush/
// close barriers all mark the link broken (sticky) after it, so the
// coordinator's tick loop and Close can stall at most once per connection
// instead of deadlocking. The credit window bounds what a flush waits on
// (≤ remoteInflight frames), so a live worker has orders-of-magnitude
// headroom. Variable for tests.
var remoteStallTimeout = 30 * time.Second

// ResultSender ships one batch of replica output tuples back to the
// coordinator. The batch slice is only valid during the call.
type ResultSender func(ts []data.Tuple) error

// DeployFunc builds one shard replica from an opaque spec (encoded by the
// plan layer). It returns the replica's entry points keyed by the
// coordinator-chosen scan name, and the replica's time-driven operators
// (windows), which tick frames advance on the connection's own goroutine.
type DeployFunc func(spec []byte, shard int, send ResultSender) (heads map[string]Operator, advs []Advancer, err error)

// headKey names one replica entry point on a connection hosting several
// shards: the coordinator and worker derive it identically.
func headKey(shard int, name string) string { return fmt.Sprintf("%d/%s", shard, name) }

// ShardWorker hosts remote shard replicas: it accepts coordinator
// connections and serves the shard frame protocol — deploy builds replicas
// through the DeployFunc, data frames push into replica heads, tick frames
// advance replica windows, flush/close frames ack as barriers. All replica
// processing for one connection runs on that connection's decode goroutine,
// preserving the single-writer discipline replica operators rely on.
type ShardWorker struct {
	*connServer
	deploy DeployFunc
}

// NewShardWorker serves shard replicas on addr (use "127.0.0.1:0" for an
// ephemeral port).
func NewShardWorker(addr string, deploy DeployFunc) (*ShardWorker, error) {
	w := &ShardWorker{deploy: deploy}
	cs, err := newConnServer(addr, w.serveConn)
	if err != nil {
		return nil, fmt.Errorf("stream: shard worker: %w", err)
	}
	w.connServer = cs
	return w, nil
}

// serveConn drives one coordinator link: decode a frame, process it, ack
// it. Processing is synchronous, so by the time a barrier frame acks, every
// result its predecessors produced has already been encoded onto the
// connection.
func (w *ShardWorker) serveConn(conn net.Conn) {
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	// All writes — result batches emitted while processing a frame, and the
	// ack that follows — happen on this goroutine, so the encoder needs no
	// lock and the wire order (results before their barrier's ack) is a
	// structural guarantee.
	writeFrame := func(f frame) error { return enc.Encode(f) }
	send := ResultSender(func(ts []data.Tuple) error {
		if len(ts) == 0 {
			return nil
		}
		return writeFrame(frame{Kind: frameResult, Batch: ts})
	})

	heads := map[string]Operator{}
	var advs []Advancer
	for {
		var f frame
		if err := dec.Decode(&f); err != nil {
			// EOF, reset, or a malformed peer: the connection's replicas die
			// with it; other connections keep serving.
			return
		}
		switch f.Kind {
		case frameDeploy:
			h, a, err := w.deploy(f.Spec, f.Shard, send)
			ack := frame{Kind: frameAck, Seq: f.Seq}
			if err != nil {
				ack.Err = err.Error()
			} else {
				for name, op := range h {
					heads[headKey(f.Shard, name)] = op
				}
				advs = append(advs, a...)
			}
			if writeFrame(ack) != nil {
				return
			}
		case frameData:
			// Unknown heads drop silently, mirroring Server: the coordinator
			// validated the deployment before opening the taps.
			if op, ok := heads[f.Input]; ok {
				if f.Batch != nil {
					PushBatch(op, f.Batch)
				} else {
					op.Push(f.Tuple)
				}
			}
			if writeFrame(frame{Kind: frameAck}) != nil {
				return
			}
		case frameTick:
			for _, a := range advs {
				a.Advance(f.Now)
			}
			if writeFrame(frame{Kind: frameAck}) != nil {
				return
			}
		case frameFlush:
			if writeFrame(frame{Kind: frameAck, Seq: f.Seq}) != nil {
				return
			}
		case frameClose:
			// Drop the replicas; the coordinator closes the connection after
			// the ack.
			heads = map[string]Operator{}
			advs = nil
			if writeFrame(frame{Kind: frameAck, Seq: f.Seq}) != nil {
				return
			}
		}
	}
}

// ShardConn is the coordinator side of one deployment's link to a
// ShardWorker. Data batches and ticks consume bounded in-flight credits
// (acks release them); deploy, flush, and close are sequence-matched
// barriers. Result batches decoded by the reader goroutine push into the
// deployment's merge sink, so per-connection FIFO makes a flush ack a
// result-drain barrier too.
//
// A transport failure is sticky: every later send drops (the deployment's
// result simply stops updating from this worker, matching the engine's
// lossy-link convention) and every waiting barrier fails fast.
type ShardConn struct {
	addr string
	conn net.Conn
	enc  *gob.Encoder
	wmu  sync.Mutex // serializes frame encodes across producers
	sink Operator   // result funnel (the deployment's Merge)

	credits chan struct{}
	wg      sync.WaitGroup

	mu     sync.Mutex
	seq    uint64
	waits  map[uint64]chan error
	err    error
	done   chan struct{} // closed once the link is broken
	closed bool
}

// DialShard connects a deployment to a ShardWorker; decoded result batches
// push into sink.
func DialShard(addr string, sink Operator) (*ShardConn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("stream: dial shard worker %s: %w", addr, err)
	}
	c := &ShardConn{
		addr:    addr,
		conn:    conn,
		enc:     gob.NewEncoder(conn),
		sink:    sink,
		credits: make(chan struct{}, remoteInflight),
		waits:   map[uint64]chan error{},
		done:    make(chan struct{}),
	}
	for i := 0; i < remoteInflight; i++ {
		c.credits <- struct{}{}
	}
	c.wg.Add(1)
	go c.readLoop()
	return c, nil
}

// Addr returns the worker address this connection serves.
func (c *ShardConn) Addr() string { return c.addr }

// Err reports the sticky transport failure, if any.
func (c *ShardConn) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// readLoop drains worker frames: results into the sink, credit acks back
// into the send budget, barrier acks to their waiters.
func (c *ShardConn) readLoop() {
	defer c.wg.Done()
	dec := gob.NewDecoder(c.conn)
	for {
		var f frame
		if err := dec.Decode(&f); err != nil {
			c.fail(fmt.Errorf("stream: shard link %s: %w", c.addr, err))
			return
		}
		switch f.Kind {
		case frameResult:
			PushBatch(c.sink, f.Batch)
		case frameAck:
			if f.Seq == 0 {
				select {
				case c.credits <- struct{}{}:
				default: // worker double-ack: never block the reader
				}
				continue
			}
			var err error
			if f.Err != "" {
				err = fmt.Errorf("stream: shard worker %s: %s", c.addr, f.Err)
			}
			c.mu.Lock()
			ch, ok := c.waits[f.Seq]
			delete(c.waits, f.Seq)
			c.mu.Unlock()
			if ok {
				ch <- err
			}
		}
	}
}

// fail records the first transport error, wakes every barrier waiter, and
// unblocks all senders.
func (c *ShardConn) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
		close(c.done)
	}
	waits := c.waits
	c.waits = map[uint64]chan error{}
	c.mu.Unlock()
	for _, ch := range waits {
		ch <- err
	}
}

// write encodes one frame under the write lock. The write deadline keeps
// a stalled peer with a full socket buffer from blocking the sender
// forever; a deadline miss breaks the link like any other write error.
func (c *ShardConn) write(f frame) error {
	if err := c.Err(); err != nil {
		return err // broken link: drop instead of touching the dead socket
	}
	c.wmu.Lock()
	c.conn.SetWriteDeadline(time.Now().Add(remoteStallTimeout))
	err := c.enc.Encode(f)
	c.wmu.Unlock()
	if err != nil {
		err = fmt.Errorf("stream: shard link %s: %w", c.addr, err)
		c.fail(err)
	}
	return err
}

// sendCredit encodes a credit-consuming frame (data or tick), blocking
// while remoteInflight frames are un-acked. A worker that stops acking
// entirely fails the link after remoteStallTimeout instead of wedging the
// sender (which may be the engine tick loop) under the set's lock. The
// uncontended path takes no timer (and allocates nothing).
func (c *ShardConn) sendCredit(f frame) error {
	// Sticky failure: drop immediately, per the documented contract —
	// without this, a send could race the closed done channel, win a
	// leftover credit, and block on the dead socket's write deadline.
	if err := c.Err(); err != nil {
		return err
	}
	select {
	case <-c.credits:
	case <-c.done:
		return c.Err()
	default:
		// Credit window exhausted: wait, but never forever.
		stall := time.NewTimer(remoteStallTimeout)
		select {
		case <-c.credits:
			stall.Stop()
		case <-c.done:
			stall.Stop()
			return c.Err()
		case <-stall.C:
			err := fmt.Errorf("stream: shard link %s: no ack in %s (worker stalled?)",
				c.addr, remoteStallTimeout)
			c.fail(err)
			return err
		}
	}
	return c.write(f)
}

// barrier encodes a sequence-matched frame and waits for its ack, marking
// the link broken if none comes within the stall timeout.
func (c *ShardConn) barrier(f frame) error {
	ch := make(chan error, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return err
	}
	c.seq++
	f.Seq = c.seq
	c.waits[f.Seq] = ch
	c.mu.Unlock()
	if err := c.write(f); err != nil {
		return err
	}
	stall := time.NewTimer(remoteStallTimeout)
	defer stall.Stop()
	select {
	case err := <-ch:
		return err
	case <-stall.C:
		c.fail(fmt.Errorf("stream: shard link %s: no barrier ack in %s (worker stalled, or not a shard worker?)",
			c.addr, remoteStallTimeout))
		// fail delivered the error to every registered waiter — but the
		// real ack may have raced the timeout and buffered nil into ch
		// first. The link is broken either way now, so never report
		// success here.
		if err := <-ch; err != nil {
			return err
		}
		return c.Err()
	}
}

// Deploy ships a replica spec for the given shard and waits for the
// worker's compile to succeed or fail.
func (c *ShardConn) Deploy(spec []byte, shard int) error {
	return c.barrier(frame{Kind: frameDeploy, Spec: spec, Shard: shard})
}

// SendBatch ships one data batch to the named replica head of a shard.
// After it returns, the batch buffer may be reused: gob has copied the
// tuples onto the wire.
func (c *ShardConn) SendBatch(shard int, name string, ts []data.Tuple) error {
	return c.sendBatchKey(headKey(shard, name), ts)
}

// sendBatchKey is SendBatch with the wire key precomposed (RemoteHead
// caches it, keeping the exchange's per-batch path free of formatting
// allocations).
func (c *ShardConn) sendBatchKey(key string, ts []data.Tuple) error {
	if len(ts) == 0 {
		return nil
	}
	return c.sendCredit(frame{Kind: frameData, Input: key, Batch: ts})
}

// Tick advances every replica window deployed over this connection.
func (c *ShardConn) Tick(now vtime.Time) error {
	return c.sendCredit(frame{Kind: frameTick, Now: now})
}

// Flush barriers the connection: when it returns nil, every batch and tick
// sent before the call has been processed by the worker and every result it
// produced has been pushed into the sink.
func (c *ShardConn) Flush() error {
	return c.barrier(frame{Kind: frameFlush})
}

// Close barriers outstanding work, tears the replicas down on the worker,
// and closes the connection. Safe to call on a broken link. Idempotent.
func (c *ShardConn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.barrier(frame{Kind: frameClose})
	c.conn.Close()
	c.wg.Wait()
	return err
}

// RemoteHead is the coordinator-side stand-in for a replica entry point
// hosted on a ShardWorker: pushes ship to the worker-registered head it
// names (the wire key is precomposed once here). The ShardSet routes
// batches through it without a local queue.
type RemoteHead struct {
	schema *data.Schema
	conn   *ShardConn
	key    string
}

// Head builds the stand-in for the named entry point of a shard deployed
// over this connection.
func (c *ShardConn) Head(schema *data.Schema, shard int, name string) *RemoteHead {
	return &RemoteHead{schema: schema, conn: c, key: headKey(shard, name)}
}

// Schema implements Operator.
func (h *RemoteHead) Schema() *data.Schema { return h.schema }

// Push implements Operator: the tuple ships as a singleton batch.
func (h *RemoteHead) Push(t data.Tuple) {
	batch := [1]data.Tuple{t}
	_ = h.conn.sendBatchKey(h.key, batch[:])
}

// PushBatch implements BatchOperator.
func (h *RemoteHead) PushBatch(ts []data.Tuple) {
	_ = h.conn.sendBatchKey(h.key, ts)
}
