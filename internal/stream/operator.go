// Package stream implements ASPEN's distributed stream engine (Fig. 1,
// "Stream Engine (on PCs)"): push-based relational operators over
// timestamped delta streams, windows, symmetric hash joins, incremental
// grouped aggregation, materialized results for display, and an exchange
// layer that ships tuples between engine nodes in-process or over TCP.
//
// Every operator processes tuples carrying an insert/delete polarity
// (data.Op). Windows emit deletions as tuples expire, so joins and
// aggregates downstream stay incrementally correct — the same machinery the
// recursive view maintenance of internal/views builds on (paper ref [11]).
package stream

import (
	"fmt"
	"sort"
	"sync"

	"aspen/internal/data"
	"aspen/internal/expr"
	"aspen/internal/vtime"
)

// Operator is a push-based tuple consumer.
//
// Ownership: an operator may retain a pushed tuple as internal state
// (windows buffer them, join tables index them), so a producer must not
// reuse a tuple's Vals after pushing it; fan-out points (Tee, engine
// inputs) clone per consumer for exactly this reason. Conversely, sinks
// that copy what they keep (Materialize, Collector) always Clone.
type Operator interface {
	// Schema describes the tuples this operator accepts.
	Schema() *data.Schema
	// Push processes one tuple (insert or delete).
	Push(t data.Tuple)
}

// BatchOperator is implemented by operators with a native batched push
// that amortizes per-tuple dispatch (locking, transport framing, window
// maintenance) over the batch.
type BatchOperator interface {
	Operator
	// PushBatch processes the tuples in order. The batch slice itself is
	// only valid during the call; the tuples inside follow the Push
	// ownership rules.
	PushBatch(ts []data.Tuple)
}

// PushBatch delivers a batch to op, using its native batch path when
// implemented and falling back to per-tuple Push otherwise.
func PushBatch(op Operator, ts []data.Tuple) {
	if b, ok := op.(BatchOperator); ok {
		b.PushBatch(ts)
		return
	}
	for _, t := range ts {
		op.Push(t)
	}
}

// testHashMask narrows operator key hashes; tests set it to 0 to force
// every key into one collision bucket, exercising bucket verification.
var testHashMask = ^uint64(0)

// SetTestHashMask narrows operator key hashes and returns the previous
// mask. It exists for tests in other packages (the plan-level differential
// harness) that force every key into one collision bucket; only call it
// while no operators are processing (before deploying, after closing).
func SetTestHashMask(m uint64) (prev uint64) {
	prev = testHashMask
	testHashMask = m
	return prev
}

// Advancer is implemented by operators with time-driven state (windows);
// the engine ticks them so expiry happens even when a stream goes quiet.
type Advancer interface {
	Advance(now vtime.Time)
}

// Filter drops tuples failing a predicate. Polarity passes through
// unchanged: a deletion of a tuple that passed is a deletion downstream.
type Filter struct {
	next  Operator
	pred  *expr.Compiled
	batch []data.Tuple // scratch for PushBatch
}

// NewFilter builds a filter in front of next.
func NewFilter(next Operator, pred *expr.Compiled) *Filter {
	return &Filter{next: next, pred: pred}
}

// Schema implements Operator.
func (f *Filter) Schema() *data.Schema { return f.next.Schema() }

// Push implements Operator.
func (f *Filter) Push(t data.Tuple) {
	if f.pred.EvalBool(t) {
		f.next.Push(t)
	}
}

// PushBatch implements BatchOperator: the passing subset forwards as one
// batch.
func (f *Filter) PushBatch(ts []data.Tuple) {
	out := f.batch[:0]
	for _, t := range ts {
		if f.pred.EvalBool(t) {
			out = append(out, t)
		}
	}
	f.batch = out[:0]
	if len(out) > 0 {
		PushBatch(f.next, out)
	}
}

// Project maps tuples through scalar expressions.
type Project struct {
	next   Operator
	exprs  []*expr.Compiled
	schema *data.Schema
	batch  []data.Tuple // scratch for PushBatch
}

// ProjectItem is one projected expression with an optional alias.
type ProjectItem struct {
	Expr  expr.Expr
	Alias string
}

// NewProject builds a projection in front of next, which must accept
// exactly len(items) columns.
func NewProject(next Operator, in *data.Schema, items []ProjectItem) (*Project, error) {
	if next.Schema().Arity() != len(items) {
		return nil, fmt.Errorf("stream: projection arity %d does not match downstream %s",
			len(items), next.Schema())
	}
	exprs := make([]*expr.Compiled, len(items))
	for i, it := range items {
		c, err := expr.Bind(it.Expr, in)
		if err != nil {
			return nil, err
		}
		exprs[i] = c
	}
	return &Project{next: next, exprs: exprs, schema: in}, nil
}

// OutSchema computes the schema a projection over in would produce:
// aliases become column names; bare column references keep their qualified
// names; other expressions get positional names.
func OutSchema(in *data.Schema, items []ProjectItem) (*data.Schema, error) {
	out := &data.Schema{Name: in.Name, IsStream: in.IsStream}
	for i, it := range items {
		c, err := expr.Bind(it.Expr, in)
		if err != nil {
			return nil, err
		}
		name := it.Alias
		rel := ""
		if name == "" {
			if col, ok := it.Expr.(expr.Col); ok {
				rel, name = data.SplitQualified(col.Ref)
			} else {
				name = fmt.Sprintf("col%d", i+1)
			}
		}
		out.Cols = append(out.Cols, data.Column{Rel: rel, Name: name, Type: c.Type})
	}
	return out, nil
}

// Schema implements Operator (input schema).
func (p *Project) Schema() *data.Schema { return p.schema }

// Push implements Operator.
func (p *Project) Push(t data.Tuple) {
	vals := make([]data.Value, len(p.exprs))
	for i, e := range p.exprs {
		vals[i] = e.Eval(t)
	}
	p.next.Push(data.Tuple{Vals: vals, TS: t.TS, Op: t.Op})
}

// PushBatch implements BatchOperator: output rows share one backing array,
// amortizing the per-tuple Vals allocation over the batch.
func (p *Project) PushBatch(ts []data.Tuple) {
	if len(ts) == 0 {
		return
	}
	n := len(p.exprs)
	backing := make([]data.Value, n*len(ts))
	out := p.batch[:0]
	for i, t := range ts {
		vals := backing[i*n : (i+1)*n : (i+1)*n]
		for k, e := range p.exprs {
			vals[k] = e.Eval(t)
		}
		out = append(out, data.Tuple{Vals: vals, TS: t.TS, Op: t.Op})
	}
	p.batch = out[:0]
	PushBatch(p.next, out)
}

// Distinct enforces set semantics over a delta stream using multiplicity
// counting: an insert is forwarded only on 0→1, a delete only on 1→0.
// Multiplicities are keyed by 64-bit hashes of the full canonical key;
// each bucket entry keeps a cloned representative tuple so collisions are
// resolved exactly with EqualVals.
type Distinct struct {
	next   Operator
	counts map[uint64][]distinctEntry
	hasher data.Hasher
}

type distinctEntry struct {
	t     data.Tuple // cloned representative
	count int
}

// NewDistinct builds a distinct operator.
func NewDistinct(next Operator) *Distinct {
	return &Distinct{next: next, counts: map[uint64][]distinctEntry{}}
}

// Schema implements Operator.
func (d *Distinct) Schema() *data.Schema { return d.next.Schema() }

// Push implements Operator.
func (d *Distinct) Push(t data.Tuple) {
	k := d.hasher.Hash(t) & testHashMask
	bucket := d.counts[k]
	slot := -1
	for i := range bucket {
		if bucket[i].t.EqualVals(t) {
			slot = i
			break
		}
	}
	switch t.Op {
	case data.Insert:
		if slot < 0 {
			d.counts[k] = append(bucket, distinctEntry{t: t.Clone(), count: 1})
			d.next.Push(t)
			return
		}
		bucket[slot].count++
	case data.Delete:
		if slot < 0 {
			return // deletion of an unseen tuple: ignore
		}
		bucket[slot].count--
		if bucket[slot].count == 0 {
			bucket[slot] = bucket[len(bucket)-1]
			bucket[len(bucket)-1] = distinctEntry{}
			d.counts[k] = bucket[:len(bucket)-1]
			if len(d.counts[k]) == 0 {
				delete(d.counts, k)
			}
			d.next.Push(t)
		}
	}
}

// Tee duplicates a stream to several consumers.
type Tee struct {
	outs []Operator
}

// NewTee fans out to the given consumers (all must share a schema).
func NewTee(outs ...Operator) *Tee { return &Tee{outs: outs} }

// Schema implements Operator.
func (t *Tee) Schema() *data.Schema {
	if len(t.outs) == 0 {
		return &data.Schema{}
	}
	return t.outs[0].Schema()
}

// Push implements Operator.
func (t *Tee) Push(tu data.Tuple) {
	for _, o := range t.outs {
		o.Push(tu.Clone())
	}
}

// PushBatch implements BatchOperator: each consumer receives its own
// cloned batch in one dispatch.
func (t *Tee) PushBatch(ts []data.Tuple) {
	for _, o := range t.outs {
		cl := make([]data.Tuple, len(ts))
		for i, tu := range ts {
			cl[i] = tu.Clone()
		}
		PushBatch(o, cl)
	}
}

// Callback adapts a function to Operator; the engine's leaf sink.
type Callback struct {
	schema *data.Schema
	fn     func(data.Tuple)
}

// NewCallback wraps fn as an operator with the given schema.
func NewCallback(schema *data.Schema, fn func(data.Tuple)) *Callback {
	return &Callback{schema: schema, fn: fn}
}

// Schema implements Operator.
func (c *Callback) Schema() *data.Schema { return c.schema }

// Push implements Operator.
func (c *Callback) Push(t data.Tuple) { c.fn(t) }

// BatchCallback adapts a batch function to Operator; like Callback but
// receiving each PushBatch as one call, so feeding another engine input
// (recursive-view edges) costs one dispatch per batch.
type BatchCallback struct {
	schema *data.Schema
	fn     func([]data.Tuple)
}

// NewBatchCallback wraps fn as a batch-native operator with the given
// schema.
func NewBatchCallback(schema *data.Schema, fn func([]data.Tuple)) *BatchCallback {
	return &BatchCallback{schema: schema, fn: fn}
}

// Schema implements Operator.
func (c *BatchCallback) Schema() *data.Schema { return c.schema }

// Push implements Operator.
func (c *BatchCallback) Push(t data.Tuple) {
	batch := [1]data.Tuple{t}
	c.fn(batch[:])
}

// PushBatch implements BatchOperator.
func (c *BatchCallback) PushBatch(ts []data.Tuple) { c.fn(ts) }

// Collector accumulates pushed tuples; a test and example helper.
type Collector struct {
	mu     sync.Mutex
	schema *data.Schema
	Tuples []data.Tuple
}

// NewCollector creates a collector with the given schema.
func NewCollector(schema *data.Schema) *Collector { return &Collector{schema: schema} }

// Schema implements Operator.
func (c *Collector) Schema() *data.Schema { return c.schema }

// Push implements Operator.
func (c *Collector) Push(t data.Tuple) {
	c.mu.Lock()
	c.Tuples = append(c.Tuples, t.Clone())
	c.mu.Unlock()
}

// PushBatch implements BatchOperator: one lock acquisition per batch.
func (c *Collector) PushBatch(ts []data.Tuple) {
	c.mu.Lock()
	for _, t := range ts {
		c.Tuples = append(c.Tuples, t.Clone())
	}
	c.mu.Unlock()
}

// Snapshot returns a copy of everything collected so far.
func (c *Collector) Snapshot() []data.Tuple {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]data.Tuple, len(c.Tuples))
	copy(out, c.Tuples)
	return out
}

// Len returns the number of collected tuples.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.Tuples)
}

// Reset clears the collector.
func (c *Collector) Reset() {
	c.mu.Lock()
	c.Tuples = nil
	c.mu.Unlock()
}

// SortTuples orders tuples by canonical key; deterministic test helper.
func SortTuples(ts []data.Tuple) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Key() < ts[j].Key() })
}
