package stream

import (
	"container/list"
	"time"

	"aspen/internal/data"
	"aspen/internal/vtime"
)

// Window converts a raw stream into a windowed delta stream: arriving
// tuples flow downstream as insertions, and tuples leaving the window flow
// as deletions. Downstream joins and aggregates therefore maintain exactly
// the window contents.
//
// Three forms mirror the StreamSQL window clauses:
//
//	[RANGE r]          time window, per-tuple slide
//	[RANGE r SLIDE s]  time window advancing at s boundaries
//	[ROWS n]           last-n window
//	[NOW]              each tuple inserted then immediately retracted
type Window struct {
	next Operator

	kind    windowKind
	rng     time.Duration
	slide   time.Duration
	rows    int
	buf     *list.List // of data.Tuple in arrival order
	lastAdv vtime.Time
}

type windowKind uint8

const (
	windowTime windowKind = iota
	windowRows
	windowNow
)

// NewTimeWindow builds a [RANGE rng] / [RANGE rng SLIDE slide] window.
func NewTimeWindow(next Operator, rng, slide time.Duration) *Window {
	return &Window{next: next, kind: windowTime, rng: rng, slide: slide, buf: list.New()}
}

// NewRowsWindow builds a [ROWS n] window.
func NewRowsWindow(next Operator, n int) *Window {
	return &Window{next: next, kind: windowRows, rows: n, buf: list.New()}
}

// NewNowWindow builds a [NOW] window.
func NewNowWindow(next Operator) *Window {
	return &Window{next: next, kind: windowNow, buf: list.New()}
}

// Schema implements Operator.
func (w *Window) Schema() *data.Schema { return w.next.Schema() }

// Push implements Operator. Deletions pass through (an upstream retraction
// removes the tuple from the window if present).
func (w *Window) Push(t data.Tuple) {
	if t.Op == data.Delete {
		w.removeOne(t)
		return
	}
	switch w.kind {
	case windowNow:
		w.next.Push(t)
		w.next.Push(t.Negate())

	case windowRows:
		w.buf.PushBack(t)
		w.next.Push(t)
		for w.buf.Len() > w.rows {
			old := w.buf.Remove(w.buf.Front()).(data.Tuple)
			out := old.Negate()
			out.TS = t.TS
			w.next.Push(out)
		}

	case windowTime:
		// Event time drives expiry: everything older than t.TS - rng leaves.
		w.advanceTo(t.TS)
		w.buf.PushBack(t)
		w.next.Push(t)
	}
}

// Advance expires by (virtual) wall-clock time; the engine calls this on
// ticks so windows drain during stream silence.
func (w *Window) Advance(now vtime.Time) {
	if w.kind == windowTime {
		w.advanceTo(now)
	}
}

func (w *Window) advanceTo(now vtime.Time) {
	if w.slide > 0 {
		// snap expiry to slide boundaries
		boundary := (int64(now) / int64(w.slide)) * int64(w.slide)
		now = vtime.Time(boundary)
		if now <= w.lastAdv {
			return
		}
		w.lastAdv = now
	}
	cutoff := now.Add(-w.rng)
	for w.buf.Len() > 0 {
		front := w.buf.Front().Value.(data.Tuple)
		if front.TS > cutoff {
			break
		}
		w.buf.Remove(w.buf.Front())
		out := front.Negate()
		out.TS = now
		w.next.Push(out)
	}
}

// removeOne deletes the first buffered tuple equal to t and forwards the
// retraction if found.
func (w *Window) removeOne(t data.Tuple) {
	for e := w.buf.Front(); e != nil; e = e.Next() {
		if e.Value.(data.Tuple).EqualVals(t) {
			w.buf.Remove(e)
			w.next.Push(t)
			return
		}
	}
}

// Len reports the current window population (for tests and plan displays).
func (w *Window) Len() int { return w.buf.Len() }
