package stream

import (
	"time"

	"aspen/internal/data"
	"aspen/internal/vtime"
)

// Window converts a raw stream into a windowed delta stream: arriving
// tuples flow downstream as insertions, and tuples leaving the window flow
// as deletions. Downstream joins and aggregates therefore maintain exactly
// the window contents.
//
// Three forms mirror the StreamSQL window clauses:
//
//	[RANGE r]          time window, per-tuple slide
//	[RANGE r SLIDE s]  time window advancing at s boundaries
//	[ROWS n]           last-n window
//	[NOW]              each tuple inserted then immediately retracted
//
// Ring state lives in a compacting slice ring rather than a linked list,
// so steady-state insert/expire performs no per-tuple allocation.
type Window struct {
	next Operator

	kind    windowKind
	rng     time.Duration
	slide   time.Duration
	rows    int
	buf     []data.Tuple // live tuples in arrival order at buf[head:]
	head    int
	lastAdv vtime.Time
	batch   []data.Tuple // scratch for batched downstream dispatch
}

type windowKind uint8

const (
	windowTime windowKind = iota
	windowRows
	windowNow
)

// NewTimeWindow builds a [RANGE rng] / [RANGE rng SLIDE slide] window.
func NewTimeWindow(next Operator, rng, slide time.Duration) *Window {
	return &Window{next: next, kind: windowTime, rng: rng, slide: slide}
}

// NewRowsWindow builds a [ROWS n] window.
func NewRowsWindow(next Operator, n int) *Window {
	return &Window{next: next, kind: windowRows, rows: n}
}

// NewNowWindow builds a [NOW] window.
func NewNowWindow(next Operator) *Window {
	return &Window{next: next, kind: windowNow}
}

// Schema implements Operator.
func (w *Window) Schema() *data.Schema { return w.next.Schema() }

// popFront removes and returns the oldest buffered tuple, compacting the
// ring once the dead prefix dominates so memory stays bounded by ~2x the
// live window.
func (w *Window) popFront() data.Tuple {
	t := w.buf[w.head]
	w.buf[w.head] = data.Tuple{} // drop the reference for GC
	w.head++
	if w.head > 32 && w.head > len(w.buf)/2 {
		n := copy(w.buf, w.buf[w.head:])
		clear(w.buf[n:])
		w.buf = w.buf[:n]
		w.head = 0
	}
	return t
}

// removeAt deletes the buffered tuple at absolute index i, preserving
// arrival order.
func (w *Window) removeAt(i int) {
	copy(w.buf[i:], w.buf[i+1:])
	w.buf[len(w.buf)-1] = data.Tuple{}
	w.buf = w.buf[:len(w.buf)-1]
}

// Push implements Operator. Deletions pass through (an upstream retraction
// removes the tuple from the window if present).
func (w *Window) Push(t data.Tuple) {
	out := w.apply(t, w.batch[:0])
	w.batch = out[:0]
	for _, o := range out {
		w.next.Push(o)
	}
}

// PushBatch implements BatchOperator: window maintenance for the whole
// batch runs first, then the resulting deltas ship downstream in one
// dispatch.
func (w *Window) PushBatch(ts []data.Tuple) {
	out := w.batch[:0]
	for _, t := range ts {
		out = w.apply(t, out)
	}
	w.batch = out[:0]
	if len(out) > 0 {
		PushBatch(w.next, out)
	}
}

// apply performs window maintenance for one tuple and appends the deltas
// to emit downstream (in order) to out.
func (w *Window) apply(t data.Tuple, out []data.Tuple) []data.Tuple {
	if t.Op == data.Delete {
		return w.removeOne(t, out)
	}
	switch w.kind {
	case windowNow:
		out = append(out, t, t.Negate())

	case windowRows:
		w.buf = append(w.buf, t)
		out = append(out, t)
		for w.Len() > w.rows {
			old := w.popFront()
			del := old.Negate()
			del.TS = t.TS
			out = append(out, del)
		}

	case windowTime:
		// Event time drives expiry: everything older than t.TS - rng leaves.
		out = w.advanceTo(t.TS, out)
		w.buf = append(w.buf, t)
		out = append(out, t)
	}
	return out
}

// Advance expires by (virtual) wall-clock time; the engine calls this on
// ticks so windows drain during stream silence.
func (w *Window) Advance(now vtime.Time) {
	if w.kind != windowTime {
		return
	}
	out := w.advanceTo(now, w.batch[:0])
	w.batch = out[:0]
	for _, o := range out {
		w.next.Push(o)
	}
}

func (w *Window) advanceTo(now vtime.Time, out []data.Tuple) []data.Tuple {
	if w.slide > 0 {
		// snap expiry to slide boundaries
		boundary := (int64(now) / int64(w.slide)) * int64(w.slide)
		now = vtime.Time(boundary)
		if now <= w.lastAdv {
			return out
		}
		w.lastAdv = now
	}
	cutoff := now.Add(-w.rng)
	for w.Len() > 0 {
		front := w.buf[w.head]
		if front.TS > cutoff {
			break
		}
		w.popFront()
		del := front.Negate()
		del.TS = now
		out = append(out, del)
	}
	return out
}

// removeOne deletes the first buffered tuple equal to t and appends the
// retraction to out if found.
func (w *Window) removeOne(t data.Tuple, out []data.Tuple) []data.Tuple {
	for i := w.head; i < len(w.buf); i++ {
		if w.buf[i].EqualVals(t) {
			w.removeAt(i)
			return append(out, t)
		}
	}
	return out
}

// Len reports the current window population (for tests and plan displays).
func (w *Window) Len() int { return len(w.buf) - w.head }

// Contents returns a cloned snapshot of the live window rows in arrival
// order. The shared-subplan layer uses it to warm-start a query attaching
// to an already-running shared window: the rows replay as insertions into
// the new suffix, so later expiry deletions retract tuples the suffix has
// actually seen. Callers must not be pushing concurrently (the same
// contract as deploy-time table loads).
func (w *Window) Contents() []data.Tuple {
	out := make([]data.Tuple, 0, w.Len())
	for i := w.head; i < len(w.buf); i++ {
		out = append(out, w.buf[i].Clone())
	}
	return out
}
