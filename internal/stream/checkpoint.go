package stream

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"

	"aspen/internal/data"
	"aspen/internal/vtime"
)

// This file is the state side of shard failover: every stateful operator of
// a shard replica can snapshot its state into a gob-friendly OpState and
// rebuild itself from one. A worker answers checkpoint barriers with the
// encoded states of every replica it hosts; the coordinator keeps the last
// committed checkpoint per shard and, after a worker loss, redeploys the
// replica spec together with that checkpoint onto a surviving host (see
// remote.go / shard.go for the protocol and the failover state machine).
//
// Snapshots capture exactly what the operators rebuild: window rings, join
// hash tables, distinct multiplicities, and grouped aggregation states
// including each group's last emitted row — so a restored replica's next
// retract-then-insert pair matches the row the coordinator's sink currently
// holds. Hash keys are never shipped: restore re-hashes through data.Hasher,
// whose canonical encoding is a pure function of the values, so checkpoints
// are portable across processes.

// Checkpointer is implemented by stateful operators that participate in
// shard failover. CheckpointState must be called only from the operator's
// single writer (the worker's frame loop, a shard worker goroutine);
// RestoreState must be called before the operator processes any tuple.
type Checkpointer interface {
	CheckpointState() OpState
	RestoreState(OpState) error
}

// Operator kinds inside an OpState.
const (
	ckWindow uint8 = iota + 1
	ckJoin
	ckDistinct
	ckAggregate
	ckPartialAgg
	ckFinalMerge
	ckMaterialize
	ckOpaque
)

// OpState is the serializable snapshot of one stateful operator. Kind
// discriminates; exactly one payload pointer is set.
type OpState struct {
	Kind     uint8
	Window   *WindowState
	Join     *JoinState
	Distinct *DistinctState
	Groups   *GroupsState
	Rows     *RowsState
	// Opaque carries state the stream layer does not interpret — higher
	// layers (plan-level sensor fragment runners) ride the shard
	// checkpoint machinery with their own encoding.
	Opaque []byte
}

// NewOpaqueState wraps an externally encoded payload as an OpState, letting
// non-stream Checkpointers (sensor fragment runners) participate in shard
// checkpoints.
func NewOpaqueState(b []byte) OpState { return OpState{Kind: ckOpaque, Opaque: b} }

// OpaqueData unwraps a NewOpaqueState payload.
func (s OpState) OpaqueData() ([]byte, error) {
	if s.Kind != ckOpaque {
		return nil, ckKindErr(ckOpaque, s)
	}
	return s.Opaque, nil
}

// WindowState snapshots a Window: the live tuples in arrival order and the
// slide-boundary watermark.
type WindowState struct {
	Buf     []data.Tuple
	LastAdv vtime.Time
}

// JoinState snapshots a symmetric hash join: the tuples of each side's
// table (bucket structure rebuilds by re-hashing).
type JoinState struct {
	L, R []data.Tuple
}

// DistinctState snapshots multiplicity counting: one representative tuple
// and its count per distinct value.
type DistinctState struct {
	Tuples []data.Tuple
	Counts []int64
}

// GroupsState snapshots a grouped aggregation table (one-phase Aggregate or
// per-shard PartialAggregate alike).
type GroupsState struct {
	Groups []GroupState
}

// GroupState is one group's running state.
type GroupState struct {
	KeyVals []data.Value
	Count   int64
	Aggs    []AggState
	// LastOut is the group's previously emitted row; HasOut distinguishes
	// "no row emitted yet" from an emitted empty row after gob's nil/empty
	// slice folding.
	LastOut []data.Value
	HasOut  bool
}

// AggState is one aggregate column's running state.
type AggState struct {
	N    int64
	Sum  float64
	Vals map[float64]int64
}

// RowsState snapshots a materialized result multiset: one representative
// tuple and its multiplicity per distinct row.
type RowsState struct {
	Tuples []data.Tuple
	Counts []int64
}

func ckKindErr(want uint8, got OpState) error {
	return fmt.Errorf("stream: checkpoint kind mismatch: restoring kind %d from kind %d", want, got.Kind)
}

// CheckpointState implements Checkpointer.
func (w *Window) CheckpointState() OpState {
	live := make([]data.Tuple, w.Len())
	copy(live, w.buf[w.head:])
	return OpState{Kind: ckWindow, Window: &WindowState{Buf: live, LastAdv: w.lastAdv}}
}

// RestoreState implements Checkpointer.
func (w *Window) RestoreState(s OpState) error {
	if s.Kind != ckWindow || s.Window == nil {
		return ckKindErr(ckWindow, s)
	}
	w.buf = append(w.buf[:0], s.Window.Buf...)
	w.head = 0
	w.lastAdv = s.Window.LastAdv
	return nil
}

// CheckpointState implements Checkpointer. Bucket iteration order is
// immaterial: restore re-hashes every tuple, and removals match by value
// equality.
func (j *Join) CheckpointState() OpState {
	st := &JoinState{L: flattenTable(j.lTable), R: flattenTable(j.rTable)}
	return OpState{Kind: ckJoin, Join: st}
}

// RestoreState implements Checkpointer.
func (j *Join) RestoreState(s OpState) error {
	if s.Kind != ckJoin || s.Join == nil {
		return ckKindErr(ckJoin, s)
	}
	j.lTable = rebuildTable(&j.hasher, s.Join.L, j.lKey)
	j.rTable = rebuildTable(&j.hasher, s.Join.R, j.rKey)
	return nil
}

func flattenTable(m map[uint64][]data.Tuple) []data.Tuple {
	out := make([]data.Tuple, 0, tableSize(m))
	for _, b := range m {
		out = append(out, b...)
	}
	return out
}

func rebuildTable(h *data.Hasher, ts []data.Tuple, keyIdx []int) map[uint64][]data.Tuple {
	m := make(map[uint64][]data.Tuple, len(ts))
	for _, t := range ts {
		key := h.HashOn(t, keyIdx) & testHashMask
		m[key] = append(m[key], t)
	}
	return m
}

// CheckpointState implements Checkpointer.
func (d *Distinct) CheckpointState() OpState {
	st := &DistinctState{}
	for _, bucket := range d.counts {
		for _, e := range bucket {
			st.Tuples = append(st.Tuples, e.t)
			st.Counts = append(st.Counts, int64(e.count))
		}
	}
	return OpState{Kind: ckDistinct, Distinct: st}
}

// RestoreState implements Checkpointer.
func (d *Distinct) RestoreState(s OpState) error {
	if s.Kind != ckDistinct || s.Distinct == nil {
		return ckKindErr(ckDistinct, s)
	}
	if len(s.Distinct.Tuples) != len(s.Distinct.Counts) {
		return fmt.Errorf("stream: distinct checkpoint: %d tuples, %d counts",
			len(s.Distinct.Tuples), len(s.Distinct.Counts))
	}
	d.counts = map[uint64][]distinctEntry{}
	for i, t := range s.Distinct.Tuples {
		key := d.hasher.Hash(t) & testHashMask
		d.counts[key] = append(d.counts[key], distinctEntry{t: t, count: int(s.Distinct.Counts[i])})
	}
	return nil
}

// checkpoint snapshots every live group of a groupTable.
func (gt *groupTable) checkpoint() *GroupsState {
	st := &GroupsState{Groups: make([]GroupState, 0, gt.n)}
	for _, bucket := range gt.groups {
		for _, g := range bucket {
			gc := GroupState{
				KeyVals: g.keyVals, Count: g.count,
				LastOut: g.lastOut, HasOut: g.lastOut != nil,
				Aggs: make([]AggState, len(g.aggs)),
			}
			for i := range g.aggs {
				gc.Aggs[i] = AggState{N: g.aggs[i].n, Sum: g.aggs[i].sum, Vals: g.aggs[i].vals}
			}
			st.Groups = append(st.Groups, gc)
		}
	}
	return st
}

// restore rebuilds the group table from a snapshot. The group hash of the
// stored key values equals the hash lookup computes from an input tuple's
// grouping columns: both fold the same value sequence through the canonical
// encoding.
func (gt *groupTable) restore(st *GroupsState) error {
	gt.groups = map[uint64][]*groupState{}
	gt.n = 0
	for _, gc := range st.Groups {
		if len(gc.Aggs) != gt.nAggs {
			return fmt.Errorf("stream: group checkpoint carries %d aggregates, operator has %d",
				len(gc.Aggs), gt.nAggs)
		}
		g := &groupState{keyVals: gc.KeyVals, count: gc.Count, aggs: make([]aggState, gt.nAggs)}
		if gc.HasOut {
			g.lastOut = gc.LastOut
		}
		for i, a := range gc.Aggs {
			vals := a.Vals
			if vals == nil {
				vals = map[float64]int64{}
			}
			g.aggs[i] = aggState{n: a.N, sum: a.Sum, vals: vals}
		}
		key := gt.hasher.HashOn(data.Tuple{Vals: g.keyVals}, nil) & testHashMask
		gt.groups[key] = append(gt.groups[key], g)
		gt.n++
	}
	return nil
}

// CheckpointState implements Checkpointer.
func (a *Aggregate) CheckpointState() OpState {
	return OpState{Kind: ckAggregate, Groups: a.table.checkpoint()}
}

// RestoreState implements Checkpointer.
func (a *Aggregate) RestoreState(s OpState) error {
	if s.Kind != ckAggregate || s.Groups == nil {
		return ckKindErr(ckAggregate, s)
	}
	return a.table.restore(s.Groups)
}

// CheckpointState implements Checkpointer.
func (a *PartialAggregate) CheckpointState() OpState {
	return OpState{Kind: ckPartialAgg, Groups: a.table.checkpoint()}
}

// RestoreState implements Checkpointer.
func (a *PartialAggregate) RestoreState(s OpState) error {
	if s.Kind != ckPartialAgg || s.Groups == nil {
		return ckKindErr(ckPartialAgg, s)
	}
	return a.table.restore(s.Groups)
}

// CheckpointState implements Checkpointer. FinalMerge lives on the
// coordinator's serial spine; its state rides in coordinator snapshots,
// not worker checkpoints.
func (f *FinalMerge) CheckpointState() OpState {
	return OpState{Kind: ckFinalMerge, Groups: f.table.checkpoint()}
}

// RestoreState implements Checkpointer.
func (f *FinalMerge) RestoreState(s OpState) error {
	if s.Kind != ckFinalMerge || s.Groups == nil {
		return ckKindErr(ckFinalMerge, s)
	}
	return f.table.restore(s.Groups)
}

// CheckpointState implements Checkpointer: the result multiset with
// per-row multiplicities, taken under the mutex (Materialize is the one
// shared sink, so unlike the single-writer operators it locks itself).
func (m *Materialize) CheckpointState() OpState {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := &RowsState{Tuples: make([]data.Tuple, 0, m.n), Counts: make([]int64, 0, m.n)}
	for _, bucket := range m.rows {
		for _, r := range bucket {
			st.Tuples = append(st.Tuples, r.t.Clone())
			st.Counts = append(st.Counts, int64(r.count))
		}
	}
	return OpState{Kind: ckMaterialize, Rows: st}
}

// RestoreState implements Checkpointer.
func (m *Materialize) RestoreState(s OpState) error {
	if s.Kind != ckMaterialize || s.Rows == nil {
		return ckKindErr(ckMaterialize, s)
	}
	if len(s.Rows.Tuples) != len(s.Rows.Counts) {
		return fmt.Errorf("stream: materialize checkpoint: %d tuples, %d counts",
			len(s.Rows.Tuples), len(s.Rows.Counts))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rows = map[uint64][]*matRow{}
	m.n = 0
	for i, t := range s.Rows.Tuples {
		key := m.hasher.Hash(t) & testHashMask
		m.rows[key] = append(m.rows[key], &matRow{t: t, count: int(s.Rows.Counts[i])})
		m.n++
	}
	m.version++
	return nil
}

// EncodeCheckpoint snapshots a replica's stateful operators (in their
// deterministic collection order) into one gob payload.
func EncodeCheckpoint(cks []Checkpointer) ([]byte, error) {
	states := make([]OpState, len(cks))
	for i, c := range cks {
		states[i] = c.CheckpointState()
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(states); err != nil {
		return nil, fmt.Errorf("stream: encode checkpoint: %w", err)
	}
	return buf.Bytes(), nil
}

// RestoreCheckpoint rebuilds a freshly compiled replica's operators from an
// EncodeCheckpoint payload; the operator collection order must match the
// encoding side (both walk the identical decoded plan). A nil/empty payload
// is the empty checkpoint: the replica starts fresh.
func RestoreCheckpoint(cks []Checkpointer, state []byte) error {
	if len(state) == 0 {
		return nil
	}
	var states []OpState
	if err := gob.NewDecoder(bytes.NewReader(state)).Decode(&states); err != nil {
		return fmt.Errorf("stream: decode checkpoint: %w", err)
	}
	if len(states) != len(cks) {
		return fmt.Errorf("stream: checkpoint carries %d operator states, replica has %d",
			len(states), len(cks))
	}
	for i := range cks {
		if err := cks[i].RestoreState(states[i]); err != nil {
			return err
		}
	}
	return nil
}

// TrimOpaqueTail drops the last n operator states from an EncodeCheckpoint
// payload, verifying they are all opaque (plan-level fragment runner)
// states. The coordinator uses it when a snapshotted deployment's remote
// fragments cannot be rebuilt at restore time (host missing): the stream
// operator prefix of the checkpoint still restores exactly, while the
// fragment runners restart centrally from their own anchors.
func TrimOpaqueTail(state []byte, n int) ([]byte, error) {
	if n == 0 {
		return state, nil
	}
	if len(state) == 0 {
		return nil, nil
	}
	var states []OpState
	if err := gob.NewDecoder(bytes.NewReader(state)).Decode(&states); err != nil {
		return nil, fmt.Errorf("stream: decode checkpoint: %w", err)
	}
	if len(states) < n {
		return nil, fmt.Errorf("stream: checkpoint carries %d operator states, cannot trim %d", len(states), n)
	}
	for _, s := range states[len(states)-n:] {
		if s.Kind != ckOpaque {
			return nil, fmt.Errorf("stream: checkpoint tail is kind %d, not opaque", s.Kind)
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(states[:len(states)-n]); err != nil {
		return nil, fmt.Errorf("stream: encode checkpoint: %w", err)
	}
	return buf.Bytes(), nil
}

// ShardCheckpoint pairs one hosted shard with its encoded operator states —
// the unit a worker's checkpoint reply carries, one entry per replica on the
// connection.
type ShardCheckpoint struct {
	Shard int
	State []byte
}

// encodeWorkerCheckpoint snapshots every replica hosted on one worker
// connection (sorted by shard for determinism).
func encodeWorkerCheckpoint(cks map[int][]Checkpointer) ([]byte, error) {
	shards := make([]int, 0, len(cks))
	for j := range cks {
		shards = append(shards, j)
	}
	sort.Ints(shards)
	payload := make([]ShardCheckpoint, 0, len(shards))
	for _, j := range shards {
		st, err := EncodeCheckpoint(cks[j])
		if err != nil {
			return nil, err
		}
		payload = append(payload, ShardCheckpoint{Shard: j, State: st})
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(payload); err != nil {
		return nil, fmt.Errorf("stream: encode worker checkpoint: %w", err)
	}
	return buf.Bytes(), nil
}

// decodeWorkerCheckpoint splits a worker checkpoint reply back into
// per-shard payloads.
func decodeWorkerCheckpoint(b []byte) (map[int][]byte, error) {
	var payload []ShardCheckpoint
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&payload); err != nil {
		return nil, fmt.Errorf("stream: decode worker checkpoint: %w", err)
	}
	out := make(map[int][]byte, len(payload))
	for _, sc := range payload {
		out[sc.Shard] = sc.State
	}
	return out, nil
}
