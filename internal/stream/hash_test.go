package stream

import (
	"testing"
	"time"

	"aspen/internal/data"
	"aspen/internal/expr"
	"aspen/internal/vtime"
)

// forceHashCollisions makes every key hash to the same bucket for the
// duration of the test, so the collision-verification paths (EqualVals /
// EqualOn scans) carry the whole load.
func forceHashCollisions(t *testing.T) {
	t.Helper()
	old := testHashMask
	testHashMask = 0
	t.Cleanup(func() { testHashMask = old })
}

func TestJoinUnderForcedCollisions(t *testing.T) {
	forceHashCollisions(t)
	j, col := newTestJoin(t, nil)
	j.Left().Push(area(1, "L1", "open"))
	j.Left().Push(area(1, "L2", "closed"))
	j.Right().Push(seat(2, "L1", 1, "free"))
	j.Right().Push(seat(2, "L2", 1, "taken"))
	j.Right().Push(seat(2, "L3", 1, "free")) // no partner
	got := col.Snapshot()
	if len(got) != 2 {
		t.Fatalf("expected 2 joined rows despite collisions, got %v", got)
	}
	for _, g := range got {
		if g.Vals[0].AsString() != g.Vals[2].AsString() {
			t.Fatalf("collision bucket joined mismatched keys: %v", g)
		}
	}
	// Deletion must remove exactly the right tuple from the shared bucket.
	j.Left().Push(area(3, "L1", "open").Negate())
	j.Right().Push(seat(4, "L1", 2, "free"))
	if n := col.Len(); n != 3 { // 2 inserts + 1 retraction, no new match
		t.Fatalf("after delete, got %d outputs: %v", n, col.Snapshot())
	}
}

func TestAggregateUnderForcedCollisions(t *testing.T) {
	forceHashCollisions(t)
	in := seatSchema()
	out, err := AggOutSchema(in, []string{"ss.room"},
		[]AggSpec{{Kind: AggCount, Alias: "n"}})
	if err != nil {
		t.Fatal(err)
	}
	mat := NewMaterialize(out)
	agg, err := NewAggregate(mat, in, []string{"ss.room"},
		[]AggSpec{{Kind: AggCount, Alias: "n"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	agg.Push(seat(1, "L1", 1, "free"))
	agg.Push(seat(2, "L1", 2, "free"))
	agg.Push(seat(3, "L2", 1, "free"))
	agg.Push(seat(4, "L3", 1, "free"))
	if agg.Groups() != 3 {
		t.Fatalf("groups = %d, want 3", agg.Groups())
	}
	rows := mat.MustSnapshot([]OrderSpec{{Col: "room"}}, -1)
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0].Vals[1].AsInt() != 2 || rows[1].Vals[1].AsInt() != 1 {
		t.Fatalf("counts wrong under collisions: %v", rows)
	}
	// Retract both L1 rows: the group must disappear from its bucket.
	agg.Push(seat(5, "L1", 1, "free").Negate())
	agg.Push(seat(6, "L1", 2, "free").Negate())
	if agg.Groups() != 2 {
		t.Fatalf("groups after retraction = %d, want 2", agg.Groups())
	}
}

func TestDistinctUnderForcedCollisions(t *testing.T) {
	forceHashCollisions(t)
	col := NewCollector(areaSchema())
	d := NewDistinct(col)
	d.Push(area(1, "L1", "open"))
	d.Push(area(2, "L1", "open")) // duplicate: suppressed
	d.Push(area(3, "L2", "open")) // distinct value, same bucket
	if col.Len() != 2 {
		t.Fatalf("distinct forwarded %d, want 2: %v", col.Len(), col.Snapshot())
	}
	d.Push(area(4, "L1", "open").Negate()) // 2 -> 1: suppressed
	d.Push(area(5, "L1", "open").Negate()) // 1 -> 0: forwarded
	if col.Len() != 3 {
		t.Fatalf("distinct delete handling broke: %v", col.Snapshot())
	}
}

func TestMaterializeUnderForcedCollisions(t *testing.T) {
	forceHashCollisions(t)
	m := NewMaterialize(areaSchema())
	m.Push(area(1, "L1", "open"))
	m.Push(area(2, "L2", "open"))
	m.Push(area(3, "L1", "open")) // multiplicity 2
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2 distinct rows", m.Len())
	}
	rows := m.MustSnapshot([]OrderSpec{{Col: "room"}}, -1)
	if len(rows) != 3 {
		t.Fatalf("snapshot = %v", rows)
	}
	m.Push(area(4, "L1", "open").Negate())
	m.Push(area(5, "L1", "open").Negate())
	if m.Len() != 1 {
		t.Fatalf("Len after deletes = %d, want 1", m.Len())
	}
	// The freed row must not leak into a later, different insert.
	m.Push(area(6, "L3", "shut"))
	rows = m.MustSnapshot([]OrderSpec{{Col: "room"}}, -1)
	if rows[1].Vals[0].AsString() != "L3" || rows[1].Vals[1].AsString() != "shut" {
		t.Fatalf("freelist reuse corrupted rows: %v", rows)
	}
}

// buildPipeline wires window -> join -> agg -> materialize, the E7 shape.
func buildPipeline(t *testing.T) (*Window, *Window, *Materialize) {
	t.Helper()
	left := data.NewSchema("a", data.Col("k", data.TInt), data.Col("v", data.TFloat))
	right := data.NewSchema("bb", data.Col("k", data.TInt), data.Col("w", data.TFloat))
	joined := left.Concat(right)
	specs := []AggSpec{{Kind: AggAvg, Arg: expr.C("v"), Alias: "m"}}
	out, err := AggOutSchema(joined, []string{"a.k"}, specs)
	if err != nil {
		t.Fatal(err)
	}
	mat := NewMaterialize(out)
	agg, err := NewAggregate(mat, joined, []string{"a.k"}, specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	j, err := NewJoin(agg, left, right, []string{"a.k"}, []string{"bb.k"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	wl := NewTimeWindow(j.Left(), 10*time.Second, 0)
	wr := NewTimeWindow(j.Right(), 10*time.Second, 0)
	return wl, wr, mat
}

// Pushing tuple-by-tuple and pushing in batches must produce identical
// materialized results.
func TestPushBatchEquivalence(t *testing.T) {
	mkInput := func(n int) []data.Tuple {
		ts := make([]data.Tuple, 0, n)
		for i := 0; i < n; i++ {
			ts = append(ts, data.Tuple{
				Vals: []data.Value{data.Int(int64(i % 5)), data.Float(float64(i))},
				TS:   vtime.Time(int64(i+1) * int64(50*time.Millisecond)),
			})
		}
		return ts
	}

	wl1, wr1, mat1 := buildPipeline(t)
	for i, tu := range mkInput(200) {
		if i%2 == 0 {
			wl1.Push(tu)
		} else {
			wr1.Push(tu)
		}
	}

	wl2, wr2, mat2 := buildPipeline(t)
	var lb, rb []data.Tuple
	for i, tu := range mkInput(200) {
		if i%2 == 0 {
			lb = append(lb, tu)
		} else {
			rb = append(rb, tu)
		}
		// Flush interleaved chunks so both sides advance together.
		if len(lb) == 10 {
			PushBatch(wl2, lb)
			PushBatch(wr2, rb)
			lb, rb = lb[:0], rb[:0]
		}
	}
	PushBatch(wl2, lb)
	PushBatch(wr2, rb)

	a := mat1.MustSnapshot(nil, -1)
	b := mat2.MustSnapshot(nil, -1)
	SortTuples(a)
	SortTuples(b)
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].EqualVals(b[i]) {
			t.Fatalf("row %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	if mat1.Len() == 0 {
		t.Fatal("pipeline produced no rows; test is vacuous")
	}
}

func TestWindowPushBatchExpiry(t *testing.T) {
	col := NewCollector(areaSchema())
	w := NewRowsWindow(col, 2)
	batch := []data.Tuple{
		area(1, "L1", "a"), area(2, "L2", "b"), area(3, "L3", "c"),
	}
	PushBatch(w, batch)
	if w.Len() != 2 {
		t.Fatalf("window len = %d, want 2", w.Len())
	}
	// 3 inserts + 1 expiry retraction.
	if col.Len() != 4 {
		t.Fatalf("downstream saw %d deltas, want 4: %v", col.Len(), col.Snapshot())
	}
}

func TestEnginePushBatch(t *testing.T) {
	e := NewEngine("n", vtime.NewScheduler())
	in := e.MustRegister("s", areaSchema())
	col := NewCollector(areaSchema())
	in.Subscribe(col)
	if err := e.PushBatch("s", []data.Tuple{
		area(1, "L1", "a"), area(2, "L2", "b"),
	}); err != nil {
		t.Fatal(err)
	}
	if col.Len() != 2 {
		t.Fatalf("batch delivered %d", col.Len())
	}
	if err := e.PushBatch("missing", []data.Tuple{area(1, "L1", "a")}); err == nil {
		t.Fatal("missing input accepted")
	}
}
