package stream

import (
	"sync"
	"sync/atomic"

	"aspen/internal/data"
)

// Fanout is a dynamic fan-out point inside a shared operator chain: the
// seam where N queries' divergent suffixes attach to one physical
// scan+window+select prefix (the plan layer's shared-subplan sharing).
// Like an engine Input, the subscriber list is copy-on-write — Push and
// PushBatch load it atomically and dispatch lock-free, Subscribe and
// Unsubscribe replace it under a lock — so attaching or stopping one
// query never serializes the hot path of the others.
//
// Ownership follows the Input convention: every subscriber but the last
// receives its own cloned tuples (downstream operators may retain them as
// state), and the final subscriber is handed the originals, so a
// single-subscriber chain stays zero-copy.
type Fanout struct {
	mu     sync.Mutex
	schema *data.Schema
	subs   atomic.Pointer[[]Operator]
}

// NewFanout creates an empty fan-out point carrying the schema.
func NewFanout(schema *data.Schema) *Fanout {
	return &Fanout{schema: schema}
}

// Schema implements Operator.
func (f *Fanout) Schema() *data.Schema { return f.schema }

// Subscribe attaches a consumer.
func (f *Fanout) Subscribe(op Operator) {
	f.mu.Lock()
	var next []Operator
	if cur := f.subs.Load(); cur != nil {
		next = append(next, *cur...)
	}
	next = append(next, op)
	f.subs.Store(&next)
	f.mu.Unlock()
}

// Unsubscribe detaches a consumer, reporting whether it was found. Only
// the first matching subscription is removed. An in-flight push keeps the
// list it loaded, so the consumer may see one last delivery.
func (f *Fanout) Unsubscribe(op Operator) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	cur := f.subs.Load()
	if cur == nil {
		return false
	}
	next := make([]Operator, 0, len(*cur))
	removed := false
	for _, o := range *cur {
		if !removed && o == op {
			removed = true
			continue
		}
		next = append(next, o)
	}
	if removed {
		f.subs.Store(&next)
	}
	return removed
}

// Subscribers reports the current number of attached consumers.
func (f *Fanout) Subscribers() int { return len(f.subscribers()) }

func (f *Fanout) subscribers() []Operator {
	if p := f.subs.Load(); p != nil {
		return *p
	}
	return nil
}

// Push implements Operator.
func (f *Fanout) Push(t data.Tuple) {
	subs := f.subscribers()
	for i, op := range subs {
		if i < len(subs)-1 {
			op.Push(t.Clone())
			continue
		}
		op.Push(t)
	}
}

// PushBatch implements BatchOperator: one dispatch per subscriber, every
// subscriber but the last on its own cloned batch.
func (f *Fanout) PushBatch(ts []data.Tuple) {
	if len(ts) == 0 {
		return
	}
	subs := f.subscribers()
	for i, op := range subs {
		b := ts
		if i < len(subs)-1 {
			cl := make([]data.Tuple, len(ts))
			for k, t := range ts {
				cl[k] = t.Clone()
			}
			b = cl
		}
		PushBatch(op, b)
	}
}
