package stream

import (
	"fmt"

	"aspen/internal/data"
	"aspen/internal/expr"
)

// Join is a symmetric hash join over two delta streams. Each side maintains
// a hash table of its current contents (window state arrives as +/- deltas
// from upstream Window operators); an insertion probes the opposite table
// and emits joined insertions, a deletion emits joined retractions. The
// result is exactly the join of the two windows at every instant.
type Join struct {
	next Operator

	left, right     *data.Schema
	out             *data.Schema
	lKey, rKey      []int // equi-join column indexes
	residual        *expr.Compiled
	lTable          map[string][]data.Tuple
	rTable          map[string][]data.Tuple
	leftIn, rightIn joinInput
}

type joinInput struct {
	j    *Join
	left bool
}

// Schema implements Operator.
func (ji *joinInput) Schema() *data.Schema {
	if ji.left {
		return ji.j.left
	}
	return ji.j.right
}

// Push implements Operator.
func (ji *joinInput) Push(t data.Tuple) { ji.j.push(t, ji.left) }

// NewJoin builds a symmetric hash join. lCols/rCols name the equi-join
// keys (same length, possibly empty for a pure cross/residual join);
// residual is an optional extra predicate over the concatenated schema.
func NewJoin(next Operator, left, right *data.Schema, lCols, rCols []string, residual expr.Expr) (*Join, error) {
	if len(lCols) != len(rCols) {
		return nil, fmt.Errorf("stream: join key arity mismatch: %v vs %v", lCols, rCols)
	}
	out := left.Concat(right)
	j := &Join{
		next: next, left: left, right: right, out: out,
		lTable: map[string][]data.Tuple{}, rTable: map[string][]data.Tuple{},
	}
	for _, c := range lCols {
		i, err := left.ColIndex(c)
		if err != nil {
			return nil, err
		}
		j.lKey = append(j.lKey, i)
	}
	for _, c := range rCols {
		i, err := right.ColIndex(c)
		if err != nil {
			return nil, err
		}
		j.rKey = append(j.rKey, i)
	}
	if residual != nil {
		c, err := expr.Bind(residual, out)
		if err != nil {
			return nil, err
		}
		j.residual = c
	}
	if next.Schema().Arity() != out.Arity() {
		return nil, fmt.Errorf("stream: join output arity %d does not match downstream %s",
			out.Arity(), next.Schema())
	}
	j.leftIn = joinInput{j: j, left: true}
	j.rightIn = joinInput{j: j, left: false}
	return j, nil
}

// Left returns the operator accepting the left input stream.
func (j *Join) Left() Operator { return &j.leftIn }

// Right returns the operator accepting the right input stream.
func (j *Join) Right() Operator { return &j.rightIn }

// OutSchema returns the concatenated output schema.
func (j *Join) OutSchema() *data.Schema { return j.out }

func (j *Join) push(t data.Tuple, fromLeft bool) {
	var mine, other map[string][]data.Tuple
	var myKey []int
	if fromLeft {
		mine, other, myKey = j.lTable, j.rTable, j.lKey
	} else {
		mine, other, myKey = j.rTable, j.lTable, j.rKey
	}
	key := t.KeyOn(myKey)

	switch t.Op {
	case data.Insert:
		mine[key] = append(mine[key], t)
	case data.Delete:
		bucket := mine[key]
		for i, b := range bucket {
			if b.EqualVals(t) {
				mine[key] = append(bucket[:i], bucket[i+1:]...)
				if len(mine[key]) == 0 {
					delete(mine, key)
				}
				break
			}
		}
	}

	for _, m := range other[key] {
		var joined data.Tuple
		if fromLeft {
			joined = t.Concat(m)
		} else {
			joined = m.Concat(t)
		}
		joined.Op = t.Op
		if joined.TS < t.TS {
			joined.TS = t.TS
		}
		if j.residual != nil && !j.residual.EvalBool(joined) {
			continue
		}
		j.next.Push(joined)
	}
}

// SizeLeft and SizeRight report table populations for plan displays.
func (j *Join) SizeLeft() int { return tableSize(j.lTable) }

// SizeRight reports the right table population.
func (j *Join) SizeRight() int { return tableSize(j.rTable) }

func tableSize(m map[string][]data.Tuple) int {
	n := 0
	for _, b := range m {
		n += len(b)
	}
	return n
}
