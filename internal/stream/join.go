package stream

import (
	"fmt"

	"aspen/internal/data"
	"aspen/internal/expr"
)

// Join is a symmetric hash join over two delta streams. Each side maintains
// a hash table of its current contents (window state arrives as +/- deltas
// from upstream Window operators); an insertion probes the opposite table
// and emits joined insertions, a deletion emits joined retractions. The
// result is exactly the join of the two windows at every instant.
//
// Tables are keyed by 64-bit hashes of the canonical join-key encoding
// rather than materialized key strings, so the per-tuple path performs no
// heap allocation; buckets may mix distinct keys on hash collision, and
// every probe hit is verified with EqualOn before emitting.
type Join struct {
	next Operator

	left, right     *data.Schema
	out             *data.Schema
	lKey, rKey      []int // equi-join column indexes
	residual        *expr.Compiled
	lTable          map[uint64][]data.Tuple
	rTable          map[uint64][]data.Tuple
	hasher          data.Hasher
	leftIn, rightIn joinInput
}

type joinInput struct {
	j    *Join
	left bool
}

// Schema implements Operator.
func (ji *joinInput) Schema() *data.Schema {
	if ji.left {
		return ji.j.left
	}
	return ji.j.right
}

// Push implements Operator.
func (ji *joinInput) Push(t data.Tuple) { ji.j.push(t, ji.left) }

// NewJoin builds a symmetric hash join. lCols/rCols name the equi-join
// keys (same length, possibly empty for a pure cross/residual join);
// residual is an optional extra predicate over the concatenated schema.
func NewJoin(next Operator, left, right *data.Schema, lCols, rCols []string, residual expr.Expr) (*Join, error) {
	if len(lCols) != len(rCols) {
		return nil, fmt.Errorf("stream: join key arity mismatch: %v vs %v", lCols, rCols)
	}
	out := left.Concat(right)
	j := &Join{
		next: next, left: left, right: right, out: out,
		lTable: map[uint64][]data.Tuple{}, rTable: map[uint64][]data.Tuple{},
	}
	// Key slices stay non-nil: HashOn(t, nil) means "all columns", but an
	// empty key list means a pure cross/residual join (single bucket).
	j.lKey = make([]int, 0, len(lCols))
	j.rKey = make([]int, 0, len(rCols))
	for _, c := range lCols {
		i, err := left.ColIndex(c)
		if err != nil {
			return nil, err
		}
		j.lKey = append(j.lKey, i)
	}
	for _, c := range rCols {
		i, err := right.ColIndex(c)
		if err != nil {
			return nil, err
		}
		j.rKey = append(j.rKey, i)
	}
	if residual != nil {
		c, err := expr.Bind(residual, out)
		if err != nil {
			return nil, err
		}
		j.residual = c
	}
	if next.Schema().Arity() != out.Arity() {
		return nil, fmt.Errorf("stream: join output arity %d does not match downstream %s",
			out.Arity(), next.Schema())
	}
	j.leftIn = joinInput{j: j, left: true}
	j.rightIn = joinInput{j: j, left: false}
	return j, nil
}

// Left returns the operator accepting the left input stream.
func (j *Join) Left() Operator { return &j.leftIn }

// Right returns the operator accepting the right input stream.
func (j *Join) Right() Operator { return &j.rightIn }

// OutSchema returns the concatenated output schema.
func (j *Join) OutSchema() *data.Schema { return j.out }

func (j *Join) push(t data.Tuple, fromLeft bool) {
	var mine, other map[uint64][]data.Tuple
	var myKey, otherKey []int
	if fromLeft {
		mine, other, myKey, otherKey = j.lTable, j.rTable, j.lKey, j.rKey
	} else {
		mine, other, myKey, otherKey = j.rTable, j.lTable, j.rKey, j.lKey
	}
	key := j.hasher.HashOn(t, myKey) & testHashMask

	switch t.Op {
	case data.Insert:
		mine[key] = append(mine[key], t)
	case data.Delete:
		bucket := mine[key]
		for i, b := range bucket {
			if b.EqualVals(t) {
				copy(bucket[i:], bucket[i+1:])
				bucket[len(bucket)-1] = data.Tuple{} // drop the reference for GC
				if len(bucket) == 1 {
					delete(mine, key)
				} else {
					mine[key] = bucket[:len(bucket)-1]
				}
				break
			}
		}
	}

	for _, m := range other[key] {
		if !t.EqualOn(myKey, m, otherKey) {
			continue // hash collision, not a join partner
		}
		var joined data.Tuple
		if fromLeft {
			joined = t.Concat(m)
		} else {
			joined = m.Concat(t)
		}
		joined.Op = t.Op
		if joined.TS < t.TS {
			joined.TS = t.TS
		}
		if j.residual != nil && !j.residual.EvalBool(joined) {
			continue
		}
		j.next.Push(joined)
	}
}

// SizeLeft and SizeRight report table populations for plan displays.
func (j *Join) SizeLeft() int { return tableSize(j.lTable) }

// SizeRight reports the right table population.
func (j *Join) SizeRight() int { return tableSize(j.rTable) }

func tableSize(m map[uint64][]data.Tuple) int {
	n := 0
	for _, b := range m {
		n += len(b)
	}
	return n
}
