package stream

import (
	"bytes"
	"testing"

	"aspen/internal/data"
)

// TestOpaqueStateRoundTrip covers the opaque checkpoint envelope that
// plan-level fragment runners ride through shard checkpoints.
func TestOpaqueStateRoundTrip(t *testing.T) {
	payload := []byte{0xde, 0xad, 0xbe, 0xef}
	st := NewOpaqueState(payload)
	got, err := st.OpaqueData()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("OpaqueData = %x, want %x", got, payload)
	}
	if _, err := (OpState{}).OpaqueData(); err == nil {
		t.Fatal("unwrapping a non-opaque state must fail with a kind error")
	}
}

type testOpaqueCk struct{ b []byte }

func (o testOpaqueCk) CheckpointState() OpState   { return NewOpaqueState(o.b) }
func (o testOpaqueCk) RestoreState(OpState) error { return nil }

type testWindowCk struct{}

func (testWindowCk) CheckpointState() OpState {
	return OpState{Kind: ckWindow, Window: &WindowState{}}
}
func (testWindowCk) RestoreState(OpState) error { return nil }

// TestTrimOpaqueTail covers the central-fallback surgery: dropping the
// fragment-runner (opaque) tail off a shard checkpoint while the stream
// operator prefix stays restorable, and refusing to cut into non-opaque
// states.
func TestTrimOpaqueTail(t *testing.T) {
	full, err := EncodeCheckpoint([]Checkpointer{
		testWindowCk{}, testOpaqueCk{[]byte{1}}, testOpaqueCk{[]byte{2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := TrimOpaqueTail(full, 0); err != nil || !bytes.Equal(got, full) {
		t.Fatalf("trim 0 = %x, %v; want the payload unchanged", got, err)
	}
	if got, err := TrimOpaqueTail(nil, 2); err != nil || got != nil {
		t.Fatalf("trim of an empty checkpoint = %x, %v; want nil, nil", got, err)
	}
	trimmed, err := TrimOpaqueTail(full, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The surviving prefix restores against the window operator alone.
	if err := RestoreCheckpoint([]Checkpointer{testWindowCk{}}, trimmed); err != nil {
		t.Fatalf("trimmed prefix does not restore: %v", err)
	}
	if _, err := TrimOpaqueTail(full, 3); err == nil {
		t.Fatal("trimming into the non-opaque prefix must fail")
	}
	if _, err := TrimOpaqueTail(full, 4); err == nil {
		t.Fatal("trimming more states than the checkpoint carries must fail")
	}
}

// TestBatchCallback covers the batch-native leaf sink: a PushBatch arrives
// as one call, a lone Push as a one-tuple batch.
func TestBatchCallback(t *testing.T) {
	schema := data.NewSchema("cb", data.Col("v", data.TInt))
	var batches [][]data.Tuple
	c := NewBatchCallback(schema, func(ts []data.Tuple) {
		cp := make([]data.Tuple, len(ts))
		copy(cp, ts)
		batches = append(batches, cp)
	})
	if c.Schema() != schema {
		t.Fatal("schema not preserved")
	}
	c.Push(data.NewTuple(0, data.Int(1)))
	PushBatch(c, []data.Tuple{
		data.NewTuple(0, data.Int(2)),
		data.NewTuple(0, data.Int(3)),
	})
	if len(batches) != 2 || len(batches[0]) != 1 || len(batches[1]) != 2 {
		t.Fatalf("batches = %v, want one single-tuple and one two-tuple call", batches)
	}
}
