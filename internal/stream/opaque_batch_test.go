package stream

import (
	"bytes"
	"testing"

	"aspen/internal/data"
)

// TestOpaqueStateRoundTrip covers the opaque checkpoint envelope that
// plan-level fragment runners ride through shard checkpoints.
func TestOpaqueStateRoundTrip(t *testing.T) {
	payload := []byte{0xde, 0xad, 0xbe, 0xef}
	st := NewOpaqueState(payload)
	got, err := st.OpaqueData()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("OpaqueData = %x, want %x", got, payload)
	}
	if _, err := (OpState{}).OpaqueData(); err == nil {
		t.Fatal("unwrapping a non-opaque state must fail with a kind error")
	}
}

// TestBatchCallback covers the batch-native leaf sink: a PushBatch arrives
// as one call, a lone Push as a one-tuple batch.
func TestBatchCallback(t *testing.T) {
	schema := data.NewSchema("cb", data.Col("v", data.TInt))
	var batches [][]data.Tuple
	c := NewBatchCallback(schema, func(ts []data.Tuple) {
		cp := make([]data.Tuple, len(ts))
		copy(cp, ts)
		batches = append(batches, cp)
	})
	if c.Schema() != schema {
		t.Fatal("schema not preserved")
	}
	c.Push(data.NewTuple(0, data.Int(1)))
	PushBatch(c, []data.Tuple{
		data.NewTuple(0, data.Int(2)),
		data.NewTuple(0, data.Int(3)),
	})
	if len(batches) != 2 || len(batches[0]) != 1 || len(batches[1]) != 2 {
		t.Fatalf("batches = %v, want one single-tuple and one two-tuple call", batches)
	}
}
