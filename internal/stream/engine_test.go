package stream

import (
	"testing"
	"time"

	"aspen/internal/data"
	"aspen/internal/expr"
	"aspen/internal/vtime"
)

func TestEngineRegisterAndPush(t *testing.T) {
	sched := vtime.NewScheduler()
	e := NewEngine("node1", sched)
	in := e.MustRegister("Temps", tempSchema())
	if _, err := e.Register("temps", tempSchema()); err == nil {
		t.Fatal("case-insensitive duplicate accepted")
	}
	col := NewCollector(tempSchema())
	in.Subscribe(col)
	if err := e.Push("TEMPS", temp(1, "L1", 20)); err != nil {
		t.Fatal(err)
	}
	if err := e.Push("missing", temp(1, "L1", 20)); err == nil {
		t.Fatal("push to missing input accepted")
	}
	if col.Len() != 1 {
		t.Fatal("tuple lost")
	}
	if got := e.Inputs(); len(got) != 1 || got[0] != "Temps" {
		t.Fatalf("inputs = %v", got)
	}
	if e.Name() != "node1" || e.Clock() != vtime.Clock(sched) {
		t.Fatal("identity accessors")
	}
}

func TestEngineStampsZeroTimestamps(t *testing.T) {
	sched := vtime.NewScheduler()
	sched.At(5*vtime.Second, func() {})
	sched.Run()
	e := NewEngine("n", sched)
	in := e.MustRegister("s", tempSchema())
	col := NewCollector(tempSchema())
	in.Subscribe(col)
	in.Push(data.NewTuple(0, data.Str("a"), data.Float(1)))
	if got := col.Snapshot()[0].TS; got != 5*vtime.Second {
		t.Fatalf("stamped ts = %v", got)
	}
	// explicit timestamps pass through
	in.Push(data.NewTuple(3, data.Str("a"), data.Float(1)))
	if got := col.Snapshot()[1].TS; got != 3 {
		t.Fatalf("explicit ts = %v", got)
	}
}

func TestEngineFanout(t *testing.T) {
	e := NewEngine("n", vtime.NewScheduler())
	in := e.MustRegister("s", tempSchema())
	a, b := NewCollector(tempSchema()), NewCollector(tempSchema())
	in.Subscribe(a)
	in.Subscribe(b)
	in.Push(temp(1, "L1", 20))
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatal("fanout failed")
	}
	// isolation between subscribers
	a.Snapshot()[0].Vals[0] = data.Str("X")
	if b.Snapshot()[0].Vals[0].AsString() != "L1" {
		t.Fatal("subscribers share tuple storage")
	}
}

func TestEngineAdvanceTicksWindows(t *testing.T) {
	e := NewEngine("n", vtime.NewScheduler())
	in := e.MustRegister("s", tempSchema())
	col := NewCollector(tempSchema())
	w := NewTimeWindow(col, 10*time.Second, 0)
	e.TrackWindow(w)
	in.Subscribe(w)
	in.Push(at(1, "a", 1))
	e.Advance(30 * vtime.Second)
	got := col.Snapshot()
	if len(got) != 2 || got[1].Op != data.Delete {
		t.Fatalf("advance: %v", got)
	}
}

func TestEngineDisplays(t *testing.T) {
	e := NewEngine("n", vtime.NewScheduler())
	d1 := e.MustDisplay("Lobby", tempSchema())
	d2 := e.MustDisplay("LOBBY", tempSchema())
	if d1 != d2 {
		t.Fatal("display identity not case-insensitive")
	}
	d1.Push(temp(1, "L1", 20))
	if d2.Len() != 1 {
		t.Fatal("display state lost")
	}
	if got := e.Displays(); len(got) != 1 || got[0] != "Lobby" {
		t.Fatalf("displays = %v (want the first-registered name, original case)", got)
	}
	// nil schema is lookup-or-create; a positionally identical schema with
	// different column names is compatible (values are positional).
	if _, err := e.Display("lobby", nil); err != nil {
		t.Fatalf("nil-schema lookup: %v", err)
	}
	renamed := data.NewSchema("x", data.Col("r", data.TString), data.Col("v", data.TFloat))
	if _, err := e.Display("lobby", renamed); err != nil {
		t.Fatalf("renamed-columns lookup: %v", err)
	}
	// A conflicting schema (different arity or column types) is an error,
	// not a silent reuse of the wrong rows.
	narrow := data.NewSchema("x", data.Col("r", data.TString))
	if _, err := e.Display("lobby", narrow); err == nil {
		t.Fatal("conflicting arity accepted")
	}
	retyped := data.NewSchema("x", data.Col("r", data.TString), data.Col("v", data.TInt))
	if _, err := e.Display("lobby", retyped); err == nil {
		t.Fatal("conflicting column type accepted")
	}
}

func TestMaterializeSnapshotOrderLimit(t *testing.T) {
	m := NewMaterialize(tempSchema())
	m.Push(temp(1, "b", 2))
	m.Push(temp(2, "a", 1))
	m.Push(temp(3, "c", 3))
	snap := m.MustSnapshot([]OrderSpec{{Col: "room"}}, -1)
	if snap[0].Vals[0].AsString() != "a" || snap[2].Vals[0].AsString() != "c" {
		t.Fatalf("asc = %v", snap)
	}
	desc := m.MustSnapshot([]OrderSpec{{Col: "temp", Desc: true}}, 2)
	if len(desc) != 2 || desc[0].Vals[1].AsFloat() != 3 {
		t.Fatalf("desc limit = %v", desc)
	}
	if _, err := m.Snapshot([]OrderSpec{{Col: "zz"}}, -1); err == nil {
		t.Fatal("bad order column accepted")
	}
}

func TestMaterializeMultiplicityAndVersion(t *testing.T) {
	m := NewMaterialize(tempSchema())
	v0 := m.Version()
	a := temp(1, "a", 1)
	m.Push(a)
	m.Push(a) // duplicate row: multiplicity 2
	if m.Len() != 1 {
		t.Fatalf("distinct rows = %d", m.Len())
	}
	snap := m.MustSnapshot(nil, -1)
	if len(snap) != 2 {
		t.Fatalf("multiset snapshot = %v", snap)
	}
	m.Push(a.Negate())
	if len(m.MustSnapshot(nil, -1)) != 1 {
		t.Fatal("multiplicity decrement failed")
	}
	m.Push(a.Negate())
	if m.Len() != 0 {
		t.Fatal("row not removed at zero")
	}
	if m.Version() == v0 {
		t.Fatal("version not bumped")
	}
	// deleting a missing row is a no-op
	m.Push(temp(9, "zz", 0).Negate())
	if m.Len() != 0 {
		t.Fatal("phantom row")
	}
}

func TestMaterializeOnChange(t *testing.T) {
	m := NewMaterialize(tempSchema())
	fired := 0
	m.OnChange = func() { fired++ }
	m.Push(temp(1, "a", 1))
	if fired != 1 {
		t.Fatalf("OnChange fired %d times", fired)
	}
}

func TestMaterializeNullOrdering(t *testing.T) {
	m := NewMaterialize(tempSchema())
	m.Push(data.NewTuple(1, data.Str("a"), data.Null))
	m.Push(data.NewTuple(2, data.Str("b"), data.Float(1)))
	snap := m.MustSnapshot([]OrderSpec{{Col: "temp"}}, -1)
	if !snap[0].Vals[1].IsNull() {
		t.Fatalf("nulls should sort first asc: %v", snap)
	}
	desc := m.MustSnapshot([]OrderSpec{{Col: "temp", Desc: true}}, -1)
	if !desc[1].Vals[1].IsNull() {
		t.Fatalf("nulls should sort last desc: %v", desc)
	}
}

func TestMustSnapshotPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMaterialize(tempSchema()).MustSnapshot([]OrderSpec{{Col: "nope"}}, -1)
}

// End-to-end single-node pipeline: window → filter → join → aggregate →
// materialize, mirroring the paper's workstation-monitoring query shape.
func TestEnginePipelineEndToEnd(t *testing.T) {
	e := NewEngine("pc1", vtime.NewScheduler())
	temps := e.MustRegister("Temps", tempSchema())

	seat := data.NewSchema("ss", data.Col("room", data.TString), data.Col("occupied", data.TBool))
	seat.IsStream = true
	seats := e.MustRegister("Seats", seat)

	outSchema, err := AggOutSchema(tempSchema().Concat(seat), []string{"t.room"},
		[]AggSpec{{Kind: AggAvg, Arg: expr.C("temp"), Alias: "avgtemp"}})
	if err != nil {
		t.Fatal(err)
	}
	mat := NewMaterialize(outSchema)
	agg, err := NewAggregate(mat, tempSchema().Concat(seat), []string{"t.room"},
		[]AggSpec{{Kind: AggAvg, Arg: expr.C("temp"), Alias: "avgtemp"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	j, err := NewJoin(agg, tempSchema(), seat, []string{"t.room"}, []string{"ss.room"},
		expr.Eq(expr.C("occupied"), expr.L(true)))
	if err != nil {
		t.Fatal(err)
	}
	wt := NewTimeWindow(j.Left(), time.Minute, 0)
	ws := NewTimeWindow(j.Right(), time.Minute, 0)
	e.TrackWindow(wt)
	e.TrackWindow(ws)
	temps.Subscribe(wt)
	seats.Subscribe(ws)

	seats.Push(data.NewTuple(vtime.Second, data.Str("L1"), data.Bool(true)))
	seats.Push(data.NewTuple(vtime.Second, data.Str("L2"), data.Bool(false)))
	temps.Push(at(2, "L1", 30))
	temps.Push(at(2, "L1", 20))
	temps.Push(at(2, "L2", 99)) // unoccupied: filtered by residual

	snap := mat.MustSnapshot([]OrderSpec{{Col: "room"}}, -1)
	if len(snap) != 1 {
		t.Fatalf("rows = %v", snap)
	}
	if snap[0].Vals[0].AsString() != "L1" || snap[0].Vals[1].AsFloat() != 25 {
		t.Fatalf("result = %v", snap)
	}
}
