package stream

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"aspen/internal/data"
)

// The exchange layer ships tuples between stream-engine nodes. Inside one
// process, InProc wires engines directly; across machines, Server/Remote
// speak a gob-encoded frame protocol over TCP. Both implement Transport, so
// plan deployment does not care where a node runs — the "distributed stream
// engine over PCs" of §3.

// Transport delivers tuples to a (possibly remote) engine's named input.
type Transport interface {
	// Send delivers one tuple to the named input.
	Send(input string, t data.Tuple) error
	// SendBatch delivers a batch of tuples to the named input in one
	// framed exchange, amortizing per-tuple transport overhead.
	SendBatch(input string, ts []data.Tuple) error
	// Close releases the link.
	Close() error
}

// frame is the wire format. Exactly one of Tuple (single delivery) or
// Batch (batched delivery) is populated.
type frame struct {
	Input string
	Tuple data.Tuple
	Batch []data.Tuple
}

// InProc is a Transport bound directly to a local engine.
type InProc struct{ e *Engine }

// NewInProc wraps an engine as a transport.
func NewInProc(e *Engine) *InProc { return &InProc{e: e} }

// Send implements Transport.
func (p *InProc) Send(input string, t data.Tuple) error { return p.e.Push(input, t) }

// SendBatch implements Transport.
func (p *InProc) SendBatch(input string, ts []data.Tuple) error {
	return p.e.PushBatch(input, ts)
}

// Close implements Transport.
func (p *InProc) Close() error { return nil }

// Server accepts TCP connections and pushes decoded frames into a local
// engine. Decode errors terminate only the offending connection.
type Server struct {
	e  *Engine
	l  net.Listener
	wg sync.WaitGroup

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// NewServer starts serving on addr (use "127.0.0.1:0" for an ephemeral
// port).
func NewServer(e *Engine, addr string) (*Server, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("stream: listen: %w", err)
	}
	s := &Server{e: e, l: l, conns: map[net.Conn]struct{}{}}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.l.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.l.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	for {
		var f frame
		if err := dec.Decode(&f); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				// Malformed peer: drop the connection, keep the engine up.
				return
			}
			return
		}
		// Unknown inputs are dropped with no way to NACK mid-stream; the
		// sender validated the deployment before wiring.
		if f.Batch != nil {
			_ = s.e.PushBatch(f.Input, f.Batch)
		} else {
			_ = s.e.Push(f.Input, f.Tuple)
		}
	}
}

// Close stops accepting, closes live connections, and waits for handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.l.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

// Remote is a TCP Transport to a Server.
type Remote struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
}

// Dial connects to a remote engine server.
func Dial(addr string) (*Remote, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("stream: dial %s: %w", addr, err)
	}
	return &Remote{conn: conn, enc: gob.NewEncoder(conn)}, nil
}

// Send implements Transport.
func (r *Remote) Send(input string, t data.Tuple) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.enc.Encode(frame{Input: input, Tuple: t}); err != nil {
		return fmt.Errorf("stream: send to %s: %w", r.conn.RemoteAddr(), err)
	}
	return nil
}

// SendBatch implements Transport: the whole batch travels in one gob
// frame, one syscall-sized write instead of len(ts).
func (r *Remote) SendBatch(input string, ts []data.Tuple) error {
	if len(ts) == 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.enc.Encode(frame{Input: input, Batch: ts}); err != nil {
		return fmt.Errorf("stream: send batch to %s: %w", r.conn.RemoteAddr(), err)
	}
	return nil
}

// Close implements Transport.
func (r *Remote) Close() error { return r.conn.Close() }

// Ship is an Operator that forwards its stream over a Transport; placing a
// Ship at a plan cut sends that subplan's output to another node.
type Ship struct {
	schema *data.Schema
	input  string
	t      Transport
	// OnError observes delivery failures (default: drop silently, as a
	// lossy WAN link would).
	OnError func(error)
	sent    int64
}

// NewShip builds a shipping operator delivering to input over t.
func NewShip(schema *data.Schema, input string, t Transport) *Ship {
	return &Ship{schema: schema, input: input, t: t}
}

// Schema implements Operator.
func (s *Ship) Schema() *data.Schema { return s.schema }

// Push implements Operator.
func (s *Ship) Push(t data.Tuple) {
	if err := s.t.Send(s.input, t); err != nil {
		if s.OnError != nil {
			s.OnError(err)
		}
		return
	}
	s.sent++
}

// PushBatch implements BatchOperator: the batch ships as one transport
// frame.
func (s *Ship) PushBatch(ts []data.Tuple) {
	if len(ts) == 0 {
		return
	}
	if err := s.t.SendBatch(s.input, ts); err != nil {
		if s.OnError != nil {
			s.OnError(err)
		}
		return
	}
	s.sent += int64(len(ts))
}

// Sent reports successfully shipped tuples.
func (s *Ship) Sent() int64 { return s.sent }
