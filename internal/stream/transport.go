package stream

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"aspen/internal/data"
	"aspen/internal/vtime"
)

// The exchange layer ships tuples between stream-engine nodes. Inside one
// process, InProc wires engines directly; across machines, Server/Remote
// speak the binary framed protocol of wire.go over TCP (columnar batch
// bodies; gob survives only inside deploy/checkpoint bodies). Both
// implement Transport, so plan deployment does not care where a node runs
// — the "distributed stream engine over PCs" of §3.

// Transport delivers tuples to a (possibly remote) engine's named input.
type Transport interface {
	// Send delivers one tuple to the named input.
	Send(input string, t data.Tuple) error
	// SendBatch delivers a batch of tuples to the named input in one
	// framed exchange, amortizing per-tuple transport overhead.
	SendBatch(input string, ts []data.Tuple) error
	// Close releases the link.
	Close() error
}

// frameKind discriminates wire frames. The numbering is stable across
// protocol revisions — a data frame is kind 0 today as it was under the
// original gob framing — so peers agree at the frame-kind level even as
// body encodings evolve.
type frameKind uint8

const (
	// frameData delivers Tuple or Batch to the named Input.
	frameData frameKind = iota
	// frameTick propagates a clock instant: the receiver advances its
	// time-driven state (windows) to Now.
	frameTick
	// frameFlush is an acked barrier: the receiver processes everything
	// before it, then answers frameAck with the same Seq — behind any
	// result frames its processing produced, so the sender's ack doubles
	// as a result-drain barrier.
	frameFlush
	// frameClose is an acked teardown barrier for the shard deployments on
	// this connection.
	frameClose
	// frameDeploy carries an opaque replica spec (Spec) for shard Shard;
	// acked with Seq (Err set on a failed deploy).
	frameDeploy
	// frameAck answers flush/close/deploy barriers (matching Seq) and, with
	// Seq == 0, releases one in-flight credit for a processed data or tick
	// frame.
	frameAck
	// frameResult returns a batch of replica output tuples from a shard
	// worker to its coordinator.
	frameResult
	// frameCheckpoint asks a shard worker to snapshot the operator state of
	// every replica on the connection; answered by frameCkptState with the
	// same Seq. Its position in the FIFO input stream defines the
	// checkpoint's consistency point.
	frameCheckpoint
	// frameCkptState answers frameCheckpoint: Spec carries the encoded
	// per-shard operator states (see checkpoint.go). It arrives behind every
	// result the pre-checkpoint input produced, so the coordinator can
	// truncate its replay and undo logs exactly at the decode.
	frameCkptState
	// frameUndeploy is an acked barrier that tears down one shard's replica
	// on the stream while the stream (and its other shards) keeps serving —
	// a rescale moved that shard to another home. frameClose remains the
	// whole-stream teardown.
	frameUndeploy
)

// InProc is a Transport bound directly to a local engine.
type InProc struct{ e *Engine }

// NewInProc wraps an engine as a transport.
func NewInProc(e *Engine) *InProc { return &InProc{e: e} }

// Send implements Transport.
func (p *InProc) Send(input string, t data.Tuple) error { return p.e.Push(input, t) }

// SendBatch implements Transport.
func (p *InProc) SendBatch(input string, ts []data.Tuple) error {
	return p.e.PushBatch(input, ts)
}

// Close implements Transport.
func (p *InProc) Close() error { return nil }

// connServer owns a listener's connection lifecycle — accept loop, live
// connection registry, and a Close that stops accepting, closes every
// connection, and waits for the handlers to drain. Server and ShardWorker
// share it so the subtle parts (the accept-after-Close check, the
// WaitGroup ordering that keeps Close from returning early) live once.
type connServer struct {
	l  net.Listener
	wg sync.WaitGroup

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// newConnServer listens on addr and serves each accepted connection with
// handler on its own goroutine; the registry bookkeeping wraps the call.
func newConnServer(addr string, handler func(net.Conn)) (*connServer, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("stream: listen: %w", err)
	}
	s := &connServer{l: l, conns: map[net.Conn]struct{}{}}
	s.wg.Add(1)
	go s.acceptLoop(handler)
	return s, nil
}

// Addr returns the bound address.
func (s *connServer) Addr() string { return s.l.Addr().String() }

func (s *connServer) acceptLoop(handler func(net.Conn)) {
	defer s.wg.Done()
	for {
		conn, err := s.l.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				conn.Close()
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			handler(conn)
		}()
	}
}

// Close stops accepting, closes live connections, and waits for handlers.
func (s *connServer) Close() error {
	s.mu.Lock()
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.l.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

// Server accepts TCP connections and pushes decoded frames into a local
// engine. Decode errors terminate only the offending connection.
type Server struct {
	*connServer
	e *Engine
}

// NewServer starts serving on addr (use "127.0.0.1:0" for an ephemeral
// port).
func NewServer(e *Engine, addr string) (*Server, error) {
	s := &Server{e: e}
	cs, err := newConnServer(addr, s.serveConn)
	if err != nil {
		return nil, err
	}
	s.connServer = cs
	return s, nil
}

func (s *Server) serveConn(conn net.Conn) {
	r := newWireReader(conn)
	var dec batchDecoder
	// The input name repeats on every data frame of a stream; memoize the
	// bytes→string conversion so the steady state allocates nothing for it.
	var lastNameB []byte
	var lastName string
	for {
		kind, body, err := r.next()
		if err != nil {
			// Clean disconnect or malformed peer alike: drop only this
			// connection, keep the engine up.
			return
		}
		br := &byteReader{b: body}
		br.uvarint() // stream id: the plain transport is single-stream (0)
		switch kind {
		case frameData:
			nameB := br.bytes(int(br.uvarint()))
			batch, derr := dec.decode(br)
			if derr != nil || br.fail {
				return
			}
			if !bytes.Equal(nameB, lastNameB) {
				lastNameB = append(lastNameB[:0], nameB...)
				lastName = string(nameB)
			}
			// Unknown inputs are dropped with no way to NACK mid-stream; the
			// sender validated the deployment before wiring.
			_ = s.e.PushBatch(lastName, batch)
		case frameTick:
			now := vtimeFrom(br.u64())
			if br.fail {
				return
			}
			s.e.Advance(now)
		default:
			// Shard frames (deploy/flush/close) need the acked worker
			// protocol (ShardWorker); a plain engine server drops them.
		}
	}
}

// Remote is a TCP Transport to a Server. It encodes into a reused buffer
// and flushes every send (the plain transport has no credit protocol to
// pace coalescing against).
type Remote struct {
	mu   sync.Mutex
	conn net.Conn
	w    *wireWriter
}

// Dial connects to a remote engine server.
func Dial(addr string) (*Remote, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("stream: dial %s: %w", addr, err)
	}
	return &Remote{conn: conn, w: &wireWriter{conn: conn}}, nil
}

// Send implements Transport: the tuple travels as a singleton batch.
func (r *Remote) Send(input string, t data.Tuple) error {
	batch := [1]data.Tuple{t}
	return r.SendBatch(input, batch[:])
}

// SendBatch implements Transport: the whole batch travels in one columnar
// frame, one syscall-sized write instead of len(ts).
func (r *Remote) SendBatch(input string, ts []data.Tuple) error {
	if len(ts) == 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.w.begin(frameData)
	r.w.buf = appendUvarint(r.w.buf, 0)
	r.w.buf = appendWireString(r.w.buf, input)
	r.w.buf = appendBatch(r.w.buf, ts)
	r.w.end(m)
	if err := r.w.flush(); err != nil {
		return fmt.Errorf("stream: send batch to %s: %w", r.conn.RemoteAddr(), err)
	}
	return nil
}

// SendTick propagates a clock instant to the remote engine, which advances
// its tracked windows to now — the cross-node form of Engine.Advance.
func (r *Remote) SendTick(now vtime.Time) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.w.begin(frameTick)
	r.w.buf = appendUvarint(r.w.buf, 0)
	r.w.buf = appendU64(r.w.buf, uint64(now))
	r.w.end(m)
	if err := r.w.flush(); err != nil {
		return fmt.Errorf("stream: tick to %s: %w", r.conn.RemoteAddr(), err)
	}
	return nil
}

// Close implements Transport.
func (r *Remote) Close() error { return r.conn.Close() }

// Ship is an Operator that forwards its stream over a Transport; placing a
// Ship at a plan cut sends that subplan's output to another node.
type Ship struct {
	schema *data.Schema
	input  string
	t      Transport
	// OnError observes delivery failures (default: drop silently, as a
	// lossy WAN link would).
	OnError func(error)
	// sent is atomic: Sent() may poll from a goroutine other than the
	// pipeline's pusher.
	sent atomic.Int64
}

// NewShip builds a shipping operator delivering to input over t.
func NewShip(schema *data.Schema, input string, t Transport) *Ship {
	return &Ship{schema: schema, input: input, t: t}
}

// Schema implements Operator.
func (s *Ship) Schema() *data.Schema { return s.schema }

// Push implements Operator.
func (s *Ship) Push(t data.Tuple) {
	if err := s.t.Send(s.input, t); err != nil {
		if s.OnError != nil {
			s.OnError(err)
		}
		return
	}
	s.sent.Add(1)
}

// PushBatch implements BatchOperator: the batch ships as one transport
// frame.
func (s *Ship) PushBatch(ts []data.Tuple) {
	if len(ts) == 0 {
		return
	}
	if err := s.t.SendBatch(s.input, ts); err != nil {
		if s.OnError != nil {
			s.OnError(err)
		}
		return
	}
	s.sent.Add(int64(len(ts)))
}

// Sent reports successfully shipped tuples.
func (s *Ship) Sent() int64 { return s.sent.Load() }
