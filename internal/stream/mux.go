package stream

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// Connection multiplexing: every shard deployment between one coordinator
// process and one worker address shares a single physical TCP connection
// (physConn), with a per-deployment stream id prefixed to every frame.
// The coordinator therefore holds O(workers) sockets however many queries
// it deploys — the fix for the O(deployments × workers) fan-out the
// one-conn-per-deployment design had.
//
// Each stream keeps the full per-connection contract: FIFO ordering
// (frames of one stream are written under the shared write lock and
// dispatched in arrival order by the shared read loop), bounded in-flight
// credits, sequence-matched barriers, and the failover replay/undo logs.
// Failure, however, is a property of the physical link — a stalled or
// dead worker stalls every stream — so any sticky failure escalates to
// the physConn, failing every stream on it and letting each deployment's
// failover machinery run. severLink consequently tears down the whole
// physical connection and waits for the shared reader to exit, which
// preserves PR-5's guarantee that no result reaches any sink or undo log
// after a sever.

// shardPool is the process-wide pool of coordinator→worker connections.
var shardPool = &connPool{conns: map[string]*physConn{}}

// connPool deduplicates physical connections by worker address. A failed
// connection is evicted immediately (so a redial after a worker restart
// gets a fresh socket); a healthy one is closed when its last stream
// releases it.
type connPool struct {
	mu    sync.Mutex
	conns map[string]*physConn
}

// WorkerConnCount reports the number of live pooled physical connections
// from this process to shard workers — O(workers), independent of the
// number of deployments. Exposed for tests and operational visibility.
func WorkerConnCount() int {
	shardPool.mu.Lock()
	defer shardPool.mu.Unlock()
	return len(shardPool.conns)
}

// get returns a live connection to addr, dialing when none is pooled.
// The dial happens outside the pool lock (it can take up to timeout);
// racing dials resolve by adopting whichever registered first.
func (p *connPool) get(addr string, timeout time.Duration) (*physConn, error) {
	p.mu.Lock()
	if pc := p.conns[addr]; pc != nil {
		pc.refs++
		p.mu.Unlock()
		return pc, nil
	}
	p.mu.Unlock()
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("stream: dial shard worker %s: %w", addr, err)
	}
	p.mu.Lock()
	if pc := p.conns[addr]; pc != nil {
		pc.refs++
		p.mu.Unlock()
		conn.Close() // lost the dial race: adopt the registered connection
		return pc, nil
	}
	pc := &physConn{
		addr:    addr,
		conn:    conn,
		pool:    p,
		w:       &wireWriter{conn: conn},
		streams: map[uint64]*ShardConn{},
		refs:    1,
	}
	p.conns[addr] = pc
	p.mu.Unlock()
	pc.wg.Add(1)
	go pc.readLoop()
	return pc, nil
}

// release drops one stream's reference; the last reference tears the
// socket down (unless a failure already did).
func (p *connPool) release(pc *physConn) {
	p.mu.Lock()
	pc.refs--
	last := pc.refs == 0
	if last && p.conns[pc.addr] == pc {
		delete(p.conns, pc.addr)
	}
	p.mu.Unlock()
	if last {
		pc.conn.Close()
		pc.wg.Wait()
	}
}

// evict removes pc from the pool so later dials get a fresh socket. The
// connection object itself lives until its streams release it.
func (p *connPool) evict(pc *physConn) {
	p.mu.Lock()
	if p.conns[pc.addr] == pc {
		delete(p.conns, pc.addr)
	}
	p.mu.Unlock()
}

// physConn is one multiplexed coordinator→worker TCP connection. All
// stream writes serialize through wmu into the shared wireWriter (which
// write-combines frames until a flush point); the single read loop
// dispatches worker frames to streams by id.
type physConn struct {
	addr string
	conn net.Conn
	pool *connPool
	wg   sync.WaitGroup

	wmu sync.Mutex
	w   *wireWriter

	mu      sync.RWMutex
	streams map[uint64]*ShardConn
	nextID  uint64
	err     error
	refs    int // guarded by pool.mu, not mu
}

// newStream registers a new stream on the connection. Stream ids are
// per-connection and never reused, so a late frame for a closed stream
// can only drop, not misroute.
func (pc *physConn) newStream(sink Operator, stall time.Duration) *ShardConn {
	c := &ShardConn{
		addr:    pc.addr,
		pc:      pc,
		sink:    sink,
		stall:   stall,
		credits: make(chan struct{}, remoteInflight),
		waits:   map[uint64]chan error{},
		done:    make(chan struct{}),
	}
	for i := 0; i < remoteInflight; i++ {
		c.credits <- struct{}{}
	}
	pc.mu.Lock()
	pc.nextID++
	c.id = pc.nextID
	err := pc.err
	pc.streams[c.id] = c
	pc.mu.Unlock()
	if err != nil {
		// The link died between pool.get and here: the stream starts
		// failed, like any send after a sticky failure.
		c.fail(err)
	}
	return c
}

// dropStream unregisters a gracefully closed stream and releases its
// pool reference.
func (pc *physConn) dropStream(c *ShardConn) {
	pc.mu.Lock()
	delete(pc.streams, c.id)
	pc.mu.Unlock()
	pc.pool.release(pc)
}

// Err reports the sticky link failure, if any.
func (pc *physConn) Err() error {
	pc.mu.RLock()
	defer pc.mu.RUnlock()
	return pc.err
}

// fail records the first link-level error, evicts the connection from
// the pool, closes the socket (waking the read loop), and fails every
// stream — a worker that stalls or dies stalls all of them, so the
// per-deployment failover machinery runs for each.
func (pc *physConn) fail(err error) {
	pc.mu.Lock()
	if pc.err != nil {
		pc.mu.Unlock()
		return
	}
	pc.err = err
	streams := make([]*ShardConn, 0, len(pc.streams))
	for _, c := range pc.streams {
		streams = append(streams, c)
	}
	pc.mu.Unlock()
	pc.pool.evict(pc)
	pc.conn.Close()
	for _, c := range streams {
		c.fail(err)
	}
}

// sever fails the link (idempotently) and waits for the read loop to
// exit: afterwards no result can reach any stream's sink or undo log.
func (pc *physConn) sever(err error) {
	pc.fail(err)
	pc.conn.Close()
	pc.wg.Wait()
}

// flushLocked writes the combined buffer when forced or past the
// write-combining threshold. Callers hold wmu. The write deadline keeps
// a stalled peer with a full socket buffer from wedging the sender; a
// miss breaks the link like any other write error.
func (pc *physConn) flushLocked(force bool, stall time.Duration) error {
	if pc.w.buffered() == 0 || (!force && pc.w.buffered() < wireFlushBytes) {
		return nil
	}
	pc.conn.SetWriteDeadline(time.Now().Add(stall))
	if err := pc.w.flush(); err != nil {
		err = fmt.Errorf("stream: shard link %s: %w", pc.addr, err)
		pc.fail(err)
		return err
	}
	return nil
}

// readLoop dispatches worker frames to their streams. A decode error
// (EOF, reset, malformed peer) is a link failure for every stream.
func (pc *physConn) readLoop() {
	defer pc.wg.Done()
	r := newWireReader(pc.conn)
	for {
		kind, body, err := r.next()
		if err != nil {
			pc.fail(fmt.Errorf("stream: shard link %s: %w", pc.addr, err))
			return
		}
		br := &byteReader{b: body}
		id := br.uvarint()
		if br.fail {
			pc.fail(fmt.Errorf("stream: shard link %s: malformed frame", pc.addr))
			return
		}
		pc.mu.RLock()
		c := pc.streams[id]
		pc.mu.RUnlock()
		if c == nil {
			continue // frame for a stream closed meanwhile: drop
		}
		if !c.handleFrame(kind, br) {
			pc.fail(fmt.Errorf("stream: shard link %s: malformed %v frame", pc.addr, kind))
			return
		}
	}
}
