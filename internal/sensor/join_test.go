package sensor

import (
	"math/rand"
	"testing"

	"aspen/internal/data"
	"aspen/internal/expr"
	"aspen/internal/sensornet"
	"aspen/internal/vtime"
)

// deskGrid builds a grid where every mote has both temperature and light
// sensors (one mote per desk).
func deskGrid(rows, cols int) *sensornet.Network {
	return sensornet.Grid(sensornet.DefaultConfig(), rows, cols, 100, cols,
		sensornet.SensorTemperature, sensornet.SensorLight)
}

// occupancyJoin is the paper's workstation-monitoring query: temperature
// joined with chair light level, returning temperature only for desks whose
// light sensor reads dark (someone seated).
func occupancyJoin(t *testing.T, e *Engine, placement Placement) *JoinState {
	t.Helper()
	q := &JoinQuery{
		Left:      JoinSide{Rel: "temp", Sensor: sensornet.SensorTemperature},
		Right:     JoinSide{Rel: "light", Sensor: sensornet.SensorLight},
		PairBy:    PairSameDesk,
		Placement: placement,
	}
	q.Right.Pred = expr.MustBind(
		expr.Bin{Op: expr.OpLt, L: expr.C("value"), R: expr.L(10.0)},
		ReadingSchema("light"))
	st, err := e.PlanJoin(q)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestJoinPairingSameDesk(t *testing.T) {
	nw := deskGrid(2, 3)
	e := NewEngine(nw, constEnv(nil))
	st := occupancyJoin(t, e, PlaceOptimized)
	// every mote carries both sensors on its desk → one pair per mote
	if st.Pairs() != 6 {
		t.Fatalf("pairs = %d, want 6", st.Pairs())
	}
}

func TestJoinProducesOnlyOccupiedDesks(t *testing.T) {
	nw := deskGrid(2, 3)
	dark := map[int]bool{2: true, 5: true}
	e := NewEngine(nw, constEnv(dark))
	st := occupancyJoin(t, e, PlaceAtBase)
	var got []data.Tuple
	e.RunJoinEpoch(st, 0, collect(&got))
	if len(got) != 2 {
		t.Fatalf("joined = %d, want 2: %v", len(got), got)
	}
	for _, tu := range got {
		mote := tu.Vals[0].AsInt()
		if !dark[int(mote)] {
			t.Fatalf("unoccupied desk leaked: %v", tu)
		}
		if tu.Vals[7].AsFloat() >= 10 {
			t.Fatalf("light value not dark: %v", tu)
		}
		// temp value carried through
		if tu.Vals[3].AsFloat() != 20+float64(mote) {
			t.Fatalf("temperature mangled: %v", tu)
		}
	}
}

// All placements must produce identical result sets on a loss-free network.
func TestJoinPlacementsEquivalent(t *testing.T) {
	dark := map[int]bool{1: true, 4: true, 7: true}
	results := map[Placement][]data.Tuple{}
	for _, pl := range []Placement{PlaceAtLeft, PlaceAtRight, PlaceAtBase, PlaceOptimized} {
		nw := deskGrid(3, 3)
		e := NewEngine(nw, constEnv(dark))
		st := occupancyJoin(t, e, pl)
		var got []data.Tuple
		e.RunJoinEpoch(st, 0, collect(&got))
		results[pl] = got
	}
	want := results[PlaceAtBase]
	for pl, got := range results {
		if len(got) != len(want) {
			t.Fatalf("%v: %d results, want %d", pl, len(got), len(want))
		}
		for i := range got {
			if !got[i].EqualVals(want[i]) {
				t.Fatalf("%v result %d = %v, want %v", pl, i, got[i], want[i])
			}
		}
	}
}

// The headline claim (E2): with few occupied desks, in-network placement
// sends far fewer messages than shipping everything to the base station.
func TestJoinInNetworkSavesMessages(t *testing.T) {
	dark := map[int]bool{7: true} // one occupied desk out of 25
	run := func(pl Placement) int64 {
		nw := deskGrid(5, 5)
		e := NewEngine(nw, constEnv(dark))
		st := occupancyJoin(t, e, pl)
		for epoch := 0; epoch < 20; epoch++ {
			e.RunJoinEpoch(st, vtime.Time(epoch)*vtime.Second, func(data.Tuple) {})
		}
		return nw.Metrics().Sent
	}
	atBase := run(PlaceAtBase)
	optimized := run(PlaceOptimized)
	if optimized >= atBase {
		t.Fatalf("optimized (%d msgs) should beat ship-to-base (%d msgs)", optimized, atBase)
	}
	// The co-located pair join (hop distance 0) should approach zero
	// shipping for unoccupied desks once estimates converge.
	if optimized > atBase/2 {
		t.Fatalf("expected ≥2× saving: optimized=%d base=%d", optimized, atBase)
	}
}

func TestJoinAdaptivePlacementConverges(t *testing.T) {
	nw := deskGrid(4, 4)
	dark := map[int]bool{}
	e := NewEngine(nw, constEnv(dark)) // nothing occupied: σR → 0
	st := occupancyJoin(t, e, PlaceOptimized)
	for epoch := 0; epoch < 30; epoch++ {
		e.RunJoinEpoch(st, vtime.Time(epoch)*vtime.Second, func(data.Tuple) {})
	}
	// With all desks unoccupied, the optimizer should avoid at-base
	// placement everywhere (it would ship σL=1 temperature readings).
	if st.Decisions[PlaceAtBase] != 0 {
		t.Fatalf("decisions = %v; at-base chosen despite empty room", st.Decisions)
	}
}

func TestJoinSameRoomAndProximityPairing(t *testing.T) {
	nw := sensornet.New(sensornet.DefaultConfig())
	nw.MustAddNode(sensornet.Node{ID: 0, X: 0, Y: 0, Room: "A",
		Sensors: []sensornet.SensorKind{sensornet.SensorTemperature}})
	nw.MustAddNode(sensornet.Node{ID: 1, X: 50, Y: 0, Room: "A",
		Sensors: []sensornet.SensorKind{sensornet.SensorLight}})
	nw.MustAddNode(sensornet.Node{ID: 2, X: 100, Y: 0, Room: "B",
		Sensors: []sensornet.SensorKind{sensornet.SensorLight}})
	_ = nw.SetBase(0)
	nw.BuildTree()
	e := NewEngine(nw, constEnv(nil))

	room, err := e.PlanJoin(&JoinQuery{
		Left:   JoinSide{Rel: "t", Sensor: sensornet.SensorTemperature},
		Right:  JoinSide{Rel: "l", Sensor: sensornet.SensorLight},
		PairBy: PairSameRoom,
	})
	if err != nil {
		t.Fatal(err)
	}
	if room.Pairs() != 1 { // only node 1 shares room A
		t.Fatalf("same-room pairs = %d", room.Pairs())
	}

	prox, err := e.PlanJoin(&JoinQuery{
		Left:   JoinSide{Rel: "t", Sensor: sensornet.SensorTemperature},
		Right:  JoinSide{Rel: "l", Sensor: sensornet.SensorLight},
		PairBy: PairProximity, Radius: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	if prox.Pairs() != 1 {
		t.Fatalf("proximity pairs = %d", prox.Pairs())
	}
	wide, _ := e.PlanJoin(&JoinQuery{
		Left:   JoinSide{Rel: "t", Sensor: sensornet.SensorTemperature},
		Right:  JoinSide{Rel: "l", Sensor: sensornet.SensorLight},
		PairBy: PairProximity, Radius: 150,
	})
	if wide.Pairs() != 2 {
		t.Fatalf("wide proximity pairs = %d", wide.Pairs())
	}
}

func TestJoinNoBaseError(t *testing.T) {
	nw := sensornet.New(sensornet.DefaultConfig())
	nw.MustAddNode(sensornet.Node{ID: 0})
	e := NewEngine(nw, constEnv(nil))
	if _, err := e.PlanJoin(&JoinQuery{PairBy: PairSameDesk}); err == nil {
		t.Fatal("expected error without base station")
	}
	if _, err := e.EstimateSelect(&SelectQuery{}); err == nil {
		t.Fatal("estimate should fail without base")
	}
	if _, err := e.EstimateAggregate(&AggregateQuery{}); err == nil {
		t.Fatal("estimate should fail without base")
	}
}

func TestJoinResidualPredicate(t *testing.T) {
	nw := deskGrid(2, 2)
	e := NewEngine(nw, constEnv(map[int]bool{0: true, 1: true, 2: true, 3: true}))
	q := &JoinQuery{
		Left:   JoinSide{Rel: "temp", Sensor: sensornet.SensorTemperature},
		Right:  JoinSide{Rel: "light", Sensor: sensornet.SensorLight},
		PairBy: PairSameDesk,
	}
	// residual: temperature above 21.5 only (nodes 2, 3)
	q.On = expr.MustBind(
		expr.Bin{Op: expr.OpGt, L: expr.C("temp.value"), R: expr.L(21.5)},
		q.Schema())
	st, err := e.PlanJoin(q)
	if err != nil {
		t.Fatal(err)
	}
	var got []data.Tuple
	e.RunJoinEpoch(st, 0, collect(&got))
	if len(got) != 2 {
		t.Fatalf("residual join = %d results: %v", len(got), got)
	}
}

// Property: on a loss-free network, the in-network join result equals a
// centralized nested-loop join over the same samples, across random
// occupancy patterns.
func TestJoinEquivalenceRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		dark := map[int]bool{}
		for id := 0; id < 16; id++ {
			if r.Intn(3) == 0 {
				dark[id] = true
			}
		}
		nw := deskGrid(4, 4)
		e := NewEngine(nw, constEnv(dark))
		st := occupancyJoin(t, e, PlaceOptimized)
		var got []data.Tuple
		e.RunJoinEpoch(st, 0, collect(&got))

		// reference: centralized evaluation
		want := 0
		for id := 0; id < 16; id++ {
			if dark[id] {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("trial %d: joined %d, want %d (dark=%v)", trial, len(got), want, dark)
		}
	}
}

func TestJoinLossDropsPairs(t *testing.T) {
	cfg := sensornet.DefaultConfig()
	cfg.LossRate = 0.6
	cfg.Seed = 3
	nw := sensornet.Grid(cfg, 3, 3, 100, 3,
		sensornet.SensorTemperature, sensornet.SensorLight)
	dark := map[int]bool{}
	for i := 0; i < 9; i++ {
		dark[i] = true
	}
	e := NewEngine(nw, constEnv(dark))
	st := occupancyJoin(t, e, PlaceAtBase)
	var got []data.Tuple
	for i := 0; i < 10; i++ {
		e.RunJoinEpoch(st, vtime.Time(i), collect(&got))
	}
	if len(got) >= 90 {
		t.Fatalf("no loss visible: %d of 90", len(got))
	}
	if nw.Metrics().Dropped == 0 {
		t.Fatal("no drops recorded")
	}
}

func TestEstimateJoinMatchesReality(t *testing.T) {
	// With converged estimates, predicted messages should be within 2× of
	// actual on a deterministic workload.
	dark := map[int]bool{3: true}
	nw := deskGrid(3, 3)
	e := NewEngine(nw, constEnv(dark))
	st := occupancyJoin(t, e, PlaceOptimized)
	for epoch := 0; epoch < 30; epoch++ {
		e.RunJoinEpoch(st, vtime.Time(epoch)*vtime.Second, func(data.Tuple) {})
	}
	nw.ResetMetrics()
	e.RunJoinEpoch(st, 100*vtime.Second, func(data.Tuple) {})
	actual := float64(nw.Metrics().Sent)
	est, err := e.EstimateJoin(st)
	if err != nil {
		t.Fatal(err)
	}
	if est.MsgsPerEpoch < actual/2-1 || est.MsgsPerEpoch > actual*2+1 {
		t.Fatalf("estimate %v vs actual %v", est.MsgsPerEpoch, actual)
	}
}

func TestEstimateSelectAndAggregate(t *testing.T) {
	nw := sensornet.Line(sensornet.DefaultConfig(), 5, 100, sensornet.SensorTemperature)
	e := NewEngine(nw, constEnv(nil))
	sel, err := e.EstimateSelect(&SelectQuery{Rel: "t", Sensor: sensornet.SensorTemperature})
	if err != nil {
		t.Fatal(err)
	}
	if sel.MsgsPerEpoch != 10 { // hops 0+1+2+3+4, σ=1
		t.Fatalf("select estimate = %v", sel.MsgsPerEpoch)
	}
	inNet, _ := e.EstimateAggregate(&AggregateQuery{Rel: "t", Sensor: sensornet.SensorTemperature,
		Mode: AggInNetwork})
	central, _ := e.EstimateAggregate(&AggregateQuery{Rel: "t", Sensor: sensornet.SensorTemperature,
		Mode: AggCentralized})
	if inNet.MsgsPerEpoch != 4 {
		t.Fatalf("in-network estimate = %v", inNet.MsgsPerEpoch)
	}
	if central.MsgsPerEpoch <= inNet.MsgsPerEpoch {
		t.Fatalf("central %v should exceed in-network %v", central.MsgsPerEpoch, inNet.MsgsPerEpoch)
	}
}

func TestCostEstimatePerSecond(t *testing.T) {
	c := CostEstimate{MsgsPerEpoch: 10, Period: 2 * 1e9}
	if c.PerSecond() != 5 {
		t.Fatalf("per-second = %v", c.PerSecond())
	}
	z := CostEstimate{MsgsPerEpoch: 7}
	if z.PerSecond() != 7 {
		t.Fatalf("zero-period per-second = %v", z.PerSecond())
	}
}

func TestPlacementString(t *testing.T) {
	for p, want := range map[Placement]string{
		PlaceOptimized: "optimized", PlaceAtLeft: "at-left",
		PlaceAtRight: "at-right", PlaceAtBase: "at-base",
	} {
		if p.String() != want {
			t.Errorf("%d = %q", p, p.String())
		}
	}
	q := &JoinQuery{Left: JoinSide{Rel: "a"}, Right: JoinSide{Rel: "b"}}
	if q.String() == "" {
		t.Error("query string empty")
	}
}
