package sensor

import (
	"testing"
	"time"

	"aspen/internal/data"
	"aspen/internal/sensornet"
	"aspen/internal/vtime"
)

// TestStartSelectBatchDeliversOneBatchPerEpoch runs a periodic selection
// through the batch sink and checks each epoch's readings arrive as a
// single batch matching the per-tuple path.
func TestStartSelectBatchDeliversOneBatchPerEpoch(t *testing.T) {
	nw := sensornet.Grid(sensornet.DefaultConfig(), 3, 3, 100, 3, sensornet.SensorTemperature)
	env := EnvFunc(func(n sensornet.Node, kind sensornet.SensorKind, _ vtime.Time) (float64, bool) {
		return 20 + float64(n.ID), true
	})
	e := NewEngine(nw, env)
	q := &SelectQuery{Rel: "t", Sensor: sensornet.SensorTemperature, Period: time.Second}

	sched := vtime.NewScheduler()
	var batches int
	var tuples []data.Tuple
	r := e.StartSelectBatch(q, sched, func(ts []data.Tuple) {
		batches++
		for _, tu := range ts {
			tuples = append(tuples, tu) // tuples are receiver-owned; keep them
		}
	})
	defer r.Stop()

	const epochs = 4
	sched.RunFor(epochs * time.Second)
	if batches != epochs {
		t.Fatalf("batches = %d, want one per epoch (%d)", batches, epochs)
	}
	// Reference: the per-tuple epoch runner on an identical fresh network.
	nw2 := sensornet.Grid(sensornet.DefaultConfig(), 3, 3, 100, 3, sensornet.SensorTemperature)
	e2 := NewEngine(nw2, env)
	perEpoch := e2.RunSelectEpoch(q, vtime.Time(time.Second), func(data.Tuple) {})
	if len(tuples) != epochs*perEpoch {
		t.Fatalf("delivered %d tuples over %d epochs, want %d per epoch",
			len(tuples), epochs, perEpoch)
	}
	// Retained tuples must stay intact after later epochs reused the
	// delivery slice: every reading carries its own Vals.
	seen := map[int64]bool{}
	for _, tu := range tuples {
		if len(tu.Vals) != 4 {
			t.Fatalf("malformed reading %v", tu)
		}
		seen[tu.Vals[0].AsInt()] = true
	}
	if len(seen) != perEpoch {
		t.Fatalf("distinct motes = %d, want %d", len(seen), perEpoch)
	}
}

// TestStartAggregateBatchMatchesPerTuple compares the batch aggregate sink
// against a direct epoch run.
func TestStartAggregateBatchMatchesPerTuple(t *testing.T) {
	nw := sensornet.Grid(sensornet.DefaultConfig(), 4, 4, 100, 4, sensornet.SensorTemperature)
	env := EnvFunc(func(n sensornet.Node, kind sensornet.SensorKind, _ vtime.Time) (float64, bool) {
		return float64(20 + n.ID%5), true
	})
	e := NewEngine(nw, env)
	q := &AggregateQuery{Rel: "t", Sensor: sensornet.SensorTemperature,
		Func: AggAvg, GroupByRoom: true, Mode: AggInNetwork, Period: time.Second}

	sched := vtime.NewScheduler()
	var batches [][]data.Tuple
	r := e.StartAggregateBatch(q, sched, func(ts []data.Tuple) {
		cp := make([]data.Tuple, len(ts))
		copy(cp, ts) // the slice is reused across epochs; the tuples are ours
		batches = append(batches, cp)
	})
	defer r.Stop()
	sched.RunFor(2 * time.Second)

	if len(batches) != 2 {
		t.Fatalf("epoch batches = %d, want 2", len(batches))
	}
	nw2 := sensornet.Grid(sensornet.DefaultConfig(), 4, 4, 100, 4, sensornet.SensorTemperature)
	e2 := NewEngine(nw2, env)
	want := e2.RunAggregateEpoch(q, vtime.Time(time.Second), func(data.Tuple) {})
	for i, b := range batches {
		if len(b) != want {
			t.Fatalf("epoch %d delivered %d groups, want %d", i, len(b), want)
		}
	}
}
