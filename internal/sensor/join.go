package sensor

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"aspen/internal/data"
	"aspen/internal/expr"
	"aspen/internal/sensornet"
	"aspen/internal/vtime"
)

// PairBy defines how join partners are matched between the two sides.
type PairBy uint8

// Pairing strategies.
const (
	// PairSameDesk joins sensors mounted on the same (room, desk): the
	// paper's workstation-monitoring join between a machine's temperature
	// mote and the chair's light mote.
	PairSameDesk PairBy = iota
	// PairSameRoom joins every left sensor with every right sensor in the
	// same room.
	PairSameRoom
	// PairProximity joins sensors within Radius of each other.
	PairProximity
)

// Placement is where a pair's join executes.
type Placement uint8

// Join placements. PlaceOptimized re-decides per pair from online
// selectivity estimates; the fixed placements are the E3 ablation arms.
const (
	PlaceOptimized Placement = iota
	PlaceAtLeft
	PlaceAtRight
	PlaceAtBase
)

// String names the placement.
func (p Placement) String() string {
	switch p {
	case PlaceOptimized:
		return "optimized"
	case PlaceAtLeft:
		return "at-left"
	case PlaceAtRight:
		return "at-right"
	case PlaceAtBase:
		return "at-base"
	}
	return "place?"
}

// JoinSide describes one input of an in-network join.
type JoinSide struct {
	Rel    string
	Sensor sensornet.SensorKind
	// Pred is an optional local filter over ReadingSchema(Rel).
	Pred *expr.Compiled
}

// JoinQuery is a pairwise in-network join between two sensor types.
type JoinQuery struct {
	Left, Right JoinSide
	PairBy      PairBy
	Radius      float64 // for PairProximity
	// On is an optional residual predicate over the concatenated schema.
	On        *expr.Compiled
	Placement Placement
	Period    time.Duration
}

// Schema returns the concatenated output schema.
func (q *JoinQuery) Schema() *data.Schema {
	return ReadingSchema(q.Left.Rel).Concat(ReadingSchema(q.Right.Rel))
}

// pair is one (left mote, right mote) join partnership.
type pair struct {
	l, r int
	// hops cached at pairing time
	lr, lBase, rBase int
}

// pairStats tracks online selectivity estimates (EWMA) per pair.
type pairStats struct {
	sigmaL, sigmaR, sigmaJ float64
	n                      int
}

const ewmaAlpha = 0.2

func (s *pairStats) observe(lPass, rPass, jPass bool) {
	b := func(x bool) float64 {
		if x {
			return 1
		}
		return 0
	}
	if s.n == 0 {
		s.sigmaL, s.sigmaR, s.sigmaJ = b(lPass), b(rPass), b(jPass)
	} else {
		s.sigmaL += ewmaAlpha * (b(lPass) - s.sigmaL)
		s.sigmaR += ewmaAlpha * (b(rPass) - s.sigmaR)
		s.sigmaJ += ewmaAlpha * (b(jPass) - s.sigmaJ)
	}
	s.n++
}

// JoinState is the long-lived execution state of a join query: the pair
// list and each pair's adaptive statistics. Create once with PlanJoin, then
// run epochs against it.
type JoinState struct {
	mu    sync.Mutex
	q     *JoinQuery
	pairs []pair
	stats map[[2]int]*pairStats
	// Sampling and concat scratch buffers, reused across pairs and epochs
	// under mu; delivered tuples are cloned out of them.
	lBuf, rBuf, jBuf []data.Value
	// Decisions counts placements chosen at the latest epoch, for
	// observability (the demo GUI shows live plan partitioning).
	Decisions map[Placement]int
}

// PairFilter restricts a join plan to a subset of pairs. Partitioned
// fragment execution admits each pair on exactly one shard, so the shards'
// delivered multisets union to the full plan's (pairs partition
// disjointly; radio accounting is per pair).
type PairFilter func(l, r sensornet.Node) bool

// PlanJoin matches join partners over the current topology and initializes
// adaptive state. It fails when the network has no base station.
func (e *Engine) PlanJoin(q *JoinQuery) (*JoinState, error) {
	return e.PlanJoinPart(q, nil)
}

// PlanJoinPart is PlanJoin keeping only the pairs keep admits (nil keeps
// all).
func (e *Engine) PlanJoinPart(q *JoinQuery, keep PairFilter) (*JoinState, error) {
	base := e.net.Base()
	if base < 0 {
		return nil, errNoBase
	}
	var lefts, rights []sensornet.Node
	for _, n := range e.net.Nodes() {
		if n.HasSensor(q.Left.Sensor) {
			lefts = append(lefts, n)
		}
		if n.HasSensor(q.Right.Sensor) {
			rights = append(rights, n)
		}
	}
	st := &JoinState{
		q: q, stats: map[[2]int]*pairStats{}, Decisions: map[Placement]int{},
		lBuf: make([]data.Value, 0, 4),
		rBuf: make([]data.Value, 0, 4),
		jBuf: make([]data.Value, 0, 8),
	}
	for _, l := range lefts {
		for _, r := range rights {
			if l.ID == r.ID && q.Left.Sensor == q.Right.Sensor {
				continue
			}
			match := false
			switch q.PairBy {
			case PairSameDesk:
				match = l.Room == r.Room && l.Desk == r.Desk && l.Desk != 0
			case PairSameRoom:
				match = l.Room == r.Room && l.Room != ""
			case PairProximity:
				dx, dy := l.X-r.X, l.Y-r.Y
				match = dx*dx+dy*dy <= q.Radius*q.Radius
			}
			if !match {
				continue
			}
			if keep != nil && !keep(l, r) {
				continue
			}
			p := pair{
				l: l.ID, r: r.ID,
				lr:    e.net.HopDist(l.ID, r.ID),
				lBase: e.net.HopDist(l.ID, base),
				rBase: e.net.HopDist(r.ID, base),
			}
			if p.lr < 0 || p.lBase < 0 || p.rBase < 0 {
				continue // disconnected
			}
			st.pairs = append(st.pairs, p)
			st.stats[[2]int{l.ID, r.ID}] = &pairStats{sigmaL: 0.5, sigmaR: 0.5, sigmaJ: 0.5}
		}
	}
	sort.Slice(st.pairs, func(i, j int) bool {
		if st.pairs[i].l != st.pairs[j].l {
			return st.pairs[i].l < st.pairs[j].l
		}
		return st.pairs[i].r < st.pairs[j].r
	})
	return st, nil
}

// Pairs returns the number of matched join partnerships.
func (st *JoinState) Pairs() int { return len(st.pairs) }

// choose returns the placement for a pair given current selectivity
// estimates, implementing the §3 "sensor-by-sensor" decision. Expected
// messages per epoch:
//
//	at left:  σR·h(r,l)   + σL·σR·σJ·h(l,base)
//	at right: σL·h(l,r)   + σL·σR·σJ·h(r,base)
//	at base:  σL·h(l,base) + σR·h(r,base)
func (st *JoinState) choose(p pair) Placement {
	if st.q.Placement != PlaceOptimized {
		return st.q.Placement
	}
	s := st.stats[[2]int{p.l, p.r}]
	join := s.sigmaL * s.sigmaR * s.sigmaJ
	costL := s.sigmaR*float64(p.lr) + join*float64(p.lBase)
	costR := s.sigmaL*float64(p.lr) + join*float64(p.rBase)
	costB := s.sigmaL*float64(p.lBase) + s.sigmaR*float64(p.rBase)
	switch {
	case costL <= costR && costL <= costB:
		return PlaceAtLeft
	case costR <= costB:
		return PlaceAtRight
	default:
		return PlaceAtBase
	}
}

// RunJoinEpoch executes one epoch of the join, delivering joined tuples to
// sink; it returns the number delivered. Radio loss can drop a pair's
// contribution for the epoch, exactly as on real motes. Per-pair sampling
// and concatenation run through the state's scratch buffers; only
// delivered tuples are cloned out.
func (e *Engine) RunJoinEpoch(st *JoinState, now vtime.Time, sink Sink) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	st.mu.Lock()
	defer st.mu.Unlock()
	q := st.q
	base := e.net.Base()
	delivered := 0
	decisions := map[Placement]int{}
	deliver := func(t data.Tuple) {
		sink(t.Clone())
		delivered++
	}

	for _, p := range st.pairs {
		ln, lok := e.net.Node(p.l)
		rn, rok := e.net.Node(p.r)
		if !lok || !rok || ln.Dead || rn.Dead {
			continue
		}
		lt, lsampled := e.sampleInto(st.lBuf, ln, q.Left.Sensor, now)
		rt, rsampled := e.sampleInto(st.rBuf, rn, q.Right.Sensor, now)
		if lsampled {
			st.lBuf = lt.Vals[:0]
		}
		if rsampled {
			st.rBuf = rt.Vals[:0]
		}
		if !lsampled || !rsampled {
			continue
		}
		lPass := q.Left.Pred == nil || q.Left.Pred.EvalBool(lt)
		rPass := q.Right.Pred == nil || q.Right.Pred.EvalBool(rt)
		joined := lt.ConcatInto(st.jBuf, rt)
		st.jBuf = joined.Vals[:0]
		jPass := q.On == nil || q.On.EvalBool(joined)
		stats := st.stats[[2]int{p.l, p.r}]
		place := st.choose(p)
		decisions[place]++
		stats.observe(lPass, rPass, jPass)

		switch place {
		case PlaceAtLeft:
			// Right ships its passing reading to left; join runs at left.
			if !rPass {
				break
			}
			if p.lr > 0 && !e.net.Send(p.r, p.l, 1) {
				break
			}
			if lPass && jPass {
				if p.lBase == 0 || e.net.Send(p.l, base, 1) {
					deliver(joined)
				}
			}
		case PlaceAtRight:
			if !lPass {
				break
			}
			if p.lr > 0 && !e.net.Send(p.l, p.r, 1) {
				break
			}
			if rPass && jPass {
				if p.rBase == 0 || e.net.Send(p.r, base, 1) {
					deliver(joined)
				}
			}
		default: // PlaceAtBase
			lArrived := lPass && (p.lBase == 0 || e.net.Send(p.l, base, 1))
			rArrived := rPass && (p.rBase == 0 || e.net.Send(p.r, base, 1))
			if lArrived && rArrived && jPass {
				deliver(joined)
			}
		}
	}
	st.Decisions = decisions
	return delivered
}

// StartJoin schedules the join every q.Period (default 1s).
func (e *Engine) StartJoin(st *JoinState, sched *vtime.Scheduler, sink Sink) Runner {
	period := st.q.Period
	if period <= 0 {
		period = time.Second
	}
	stop := sched.Every(period, func() {
		e.RunJoinEpoch(st, sched.Now(), sink)
	})
	return &handle{stop: stop}
}

// StartJoinBatch is StartJoin delivering each epoch's joined tuples as one
// batch instead of tuple-at-a-time.
func (e *Engine) StartJoinBatch(st *JoinState, sched *vtime.Scheduler, sink BatchSink) Runner {
	return startEpochRunner(sched, st.q.Period, sink, func(now vtime.Time, deliver Sink) {
		e.RunJoinEpoch(st, now, deliver)
	})
}

// PairStatsSnapshot is one pair's serialized adaptive state, the unit of
// JoinState checkpoints (plan-level fragment runners ship these across
// failovers and rescales so placement decisions survive a move).
type PairStatsSnapshot struct {
	L, R                   int
	SigmaL, SigmaR, SigmaJ float64
	N                      int
}

// SnapshotStats captures every pair's adaptive selectivity state, sorted
// by (left, right) mote ID for deterministic encoding.
func (st *JoinState) SnapshotStats() []PairStatsSnapshot {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]PairStatsSnapshot, 0, len(st.pairs))
	for _, p := range st.pairs {
		s := st.stats[[2]int{p.l, p.r}]
		out = append(out, PairStatsSnapshot{
			L: p.l, R: p.r,
			SigmaL: s.sigmaL, SigmaR: s.sigmaR, SigmaJ: s.sigmaJ, N: s.n,
		})
	}
	return out
}

// RestoreStats re-applies a SnapshotStats capture. Pairs absent from the
// snapshot keep their initial estimates; snapshot entries without a
// matching pair (topology drift) are ignored.
func (st *JoinState) RestoreStats(snap []PairStatsSnapshot) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, e := range snap {
		s, ok := st.stats[[2]int{e.L, e.R}]
		if !ok {
			continue
		}
		s.sigmaL, s.sigmaR, s.sigmaJ, s.n = e.SigmaL, e.SigmaR, e.SigmaJ, e.N
	}
}

// String renders the query for plan displays.
func (q *JoinQuery) String() string {
	return fmt.Sprintf("in-network join %s(%s) ⋈ %s(%s) [%s]",
		q.Left.Rel, q.Left.Sensor, q.Right.Rel, q.Right.Sensor, q.Placement)
}
