package sensor

import (
	"testing"
	"time"

	"aspen/internal/data"
	"aspen/internal/expr"
	"aspen/internal/sensornet"
	"aspen/internal/vtime"
)

// constEnv returns fixed per-node values: temp = 20 + id, light = high
// unless the node id is in dark.
func constEnv(dark map[int]bool) Env {
	return EnvFunc(func(n sensornet.Node, kind sensornet.SensorKind, now vtime.Time) (float64, bool) {
		switch kind {
		case sensornet.SensorTemperature:
			return 20 + float64(n.ID), true
		case sensornet.SensorLight:
			if dark[n.ID] {
				return 5, true // occupied chair blocks the light sensor
			}
			return 80, true
		}
		return 0, false
	})
}

func collect(sink *[]data.Tuple) Sink {
	return func(t data.Tuple) { *sink = append(*sink, t) }
}

func TestSelectEpochFiltersInNetwork(t *testing.T) {
	nw := sensornet.Line(sensornet.DefaultConfig(), 5, 100, sensornet.SensorTemperature)
	e := NewEngine(nw, constEnv(nil))
	q := &SelectQuery{Rel: "t", Sensor: sensornet.SensorTemperature}
	q.Pred = expr.MustBind(
		expr.Bin{Op: expr.OpGe, L: expr.C("value"), R: expr.L(22.0)}, q.Schema())

	var got []data.Tuple
	n := e.RunSelectEpoch(q, 0, collect(&got))
	// temps are 20..24; >=22 passes for nodes 2,3,4
	if n != 3 || len(got) != 3 {
		t.Fatalf("delivered = %d (%v)", n, got)
	}
	// messages: node 2 (2 hops) + node 3 (3) + node 4 (4) = 9; filtered
	// nodes send nothing.
	if m := nw.Metrics(); m.Sent != 9 {
		t.Fatalf("sent = %d, want 9", m.Sent)
	}
	for _, tu := range got {
		if tu.Vals[3].AsFloat() < 22 {
			t.Fatalf("filter leaked %v", tu)
		}
	}
}

func TestSelectSchemaShape(t *testing.T) {
	q := &SelectQuery{Rel: "temps", Sensor: sensornet.SensorTemperature}
	s := q.Schema()
	if !s.IsStream || s.Arity() != 4 || s.Cols[0].QName() != "temps.mote" {
		t.Fatalf("schema = %s", s)
	}
}

func TestSelectBaseNodeDeliversFree(t *testing.T) {
	nw := sensornet.Line(sensornet.DefaultConfig(), 1, 100, sensornet.SensorTemperature)
	e := NewEngine(nw, constEnv(nil))
	var got []data.Tuple
	e.RunSelectEpoch(&SelectQuery{Rel: "t", Sensor: sensornet.SensorTemperature}, 0, collect(&got))
	if len(got) != 1 {
		t.Fatalf("got = %v", got)
	}
	if nw.Metrics().Sent != 0 {
		t.Fatal("base's own reading should not use radio")
	}
}

func TestAggregateTAGMatchesCentralized(t *testing.T) {
	for _, fn := range []AggFunc{AggCount, AggSum, AggAvg, AggMin, AggMax} {
		nwA := sensornet.Grid(sensornet.DefaultConfig(), 4, 4, 100, 4, sensornet.SensorTemperature)
		nwB := sensornet.Grid(sensornet.DefaultConfig(), 4, 4, 100, 4, sensornet.SensorTemperature)
		eA := NewEngine(nwA, constEnv(nil))
		eB := NewEngine(nwB, constEnv(nil))

		var inNet, central []data.Tuple
		eA.RunAggregateEpoch(&AggregateQuery{Rel: "t", Sensor: sensornet.SensorTemperature,
			Func: fn, Mode: AggInNetwork, GroupByRoom: true}, 0, collect(&inNet))
		eB.RunAggregateEpoch(&AggregateQuery{Rel: "t", Sensor: sensornet.SensorTemperature,
			Func: fn, Mode: AggCentralized, GroupByRoom: true}, 0, collect(&central))

		if len(inNet) != len(central) || len(inNet) == 0 {
			t.Fatalf("%v: group counts differ: %d vs %d", fn, len(inNet), len(central))
		}
		for i := range inNet {
			if !inNet[i].EqualVals(central[i]) {
				t.Fatalf("%v group %d: TAG %v != central %v", fn, i, inNet[i], central[i])
			}
		}
	}
}

func TestAggregateTAGSavesMessages(t *testing.T) {
	nwA := sensornet.Grid(sensornet.DefaultConfig(), 6, 6, 100, 6, sensornet.SensorTemperature)
	nwB := sensornet.Grid(sensornet.DefaultConfig(), 6, 6, 100, 6, sensornet.SensorTemperature)
	eA := NewEngine(nwA, constEnv(nil))
	eB := NewEngine(nwB, constEnv(nil))
	drop := func(data.Tuple) {}
	eA.RunAggregateEpoch(&AggregateQuery{Rel: "t", Sensor: sensornet.SensorTemperature,
		Func: AggAvg, Mode: AggInNetwork}, 0, drop)
	eB.RunAggregateEpoch(&AggregateQuery{Rel: "t", Sensor: sensornet.SensorTemperature,
		Func: AggAvg, Mode: AggCentralized}, 0, drop)
	tag, central := nwA.Metrics().Sent, nwB.Metrics().Sent
	if tag >= central {
		t.Fatalf("TAG (%d msgs) should beat centralized (%d msgs)", tag, central)
	}
	// TAG: exactly one message per non-base node (single group)
	if tag != 35 {
		t.Fatalf("TAG msgs = %d, want 35", tag)
	}
}

func TestAggregateGlobalValue(t *testing.T) {
	nw := sensornet.Line(sensornet.DefaultConfig(), 3, 100, sensornet.SensorTemperature)
	e := NewEngine(nw, constEnv(nil))
	var got []data.Tuple
	e.RunAggregateEpoch(&AggregateQuery{Rel: "t", Sensor: sensornet.SensorTemperature,
		Func: AggAvg, Mode: AggInNetwork}, 0, collect(&got))
	if len(got) != 1 {
		t.Fatalf("groups = %d", len(got))
	}
	if v := got[0].Vals[0].AsFloat(); v != 21 { // (20+21+22)/3
		t.Fatalf("avg = %v", v)
	}
	// min / max / count / sum
	checks := map[AggFunc]float64{AggMin: 20, AggMax: 22, AggCount: 3, AggSum: 63}
	for fn, want := range checks {
		var out []data.Tuple
		e.RunAggregateEpoch(&AggregateQuery{Rel: "t", Sensor: sensornet.SensorTemperature,
			Func: fn, Mode: AggInNetwork}, 0, collect(&out))
		if out[0].Vals[0].AsFloat() != want {
			t.Fatalf("%v = %v, want %v", fn, out[0].Vals[0], want)
		}
	}
}

func TestAggregateWithPredicate(t *testing.T) {
	nw := sensornet.Line(sensornet.DefaultConfig(), 5, 100, sensornet.SensorTemperature)
	e := NewEngine(nw, constEnv(nil))
	q := &AggregateQuery{Rel: "t", Sensor: sensornet.SensorTemperature, Func: AggCount, Mode: AggInNetwork}
	q.Pred = expr.MustBind(expr.Bin{Op: expr.OpGt, L: expr.C("value"), R: expr.L(21.5)},
		ReadingSchema("t"))
	var got []data.Tuple
	e.RunAggregateEpoch(q, 0, collect(&got))
	if got[0].Vals[0].AsFloat() != 3 { // nodes 2,3,4
		t.Fatalf("count = %v", got[0].Vals[0])
	}
}

func TestAggregateSchemas(t *testing.T) {
	g := &AggregateQuery{Rel: "a", GroupByRoom: true}
	if g.Schema().Arity() != 2 || g.Schema().Cols[0].Name != "room" {
		t.Fatalf("grouped schema = %s", g.Schema())
	}
	u := &AggregateQuery{Rel: "a"}
	if u.Schema().Arity() != 1 {
		t.Fatalf("global schema = %s", u.Schema())
	}
}

func TestAggFuncString(t *testing.T) {
	names := map[AggFunc]string{AggCount: "count", AggSum: "sum", AggAvg: "avg", AggMin: "min", AggMax: "max"}
	for f, want := range names {
		if f.String() != want {
			t.Errorf("%d.String() = %q", f, f.String())
		}
	}
	if AggFunc(99).String() != "agg?" {
		t.Error("unknown agg should format")
	}
}

func TestStartSelectPeriodic(t *testing.T) {
	nw := sensornet.Line(sensornet.DefaultConfig(), 2, 100, sensornet.SensorTemperature)
	e := NewEngine(nw, constEnv(nil))
	sched := vtime.NewScheduler()
	var got []data.Tuple
	r := e.StartSelect(&SelectQuery{Rel: "t", Sensor: sensornet.SensorTemperature,
		Period: 10 * time.Second}, sched, collect(&got))
	sched.RunUntil(35 * vtime.Second)
	if len(got) != 3*2 { // 3 epochs × 2 nodes
		t.Fatalf("tuples = %d", len(got))
	}
	r.Stop()
	sched.RunUntil(100 * vtime.Second)
	if len(got) != 6 {
		t.Fatalf("tuples after stop = %d", len(got))
	}
	// timestamps carry virtual time
	if got[0].TS != 10*vtime.Second {
		t.Fatalf("ts = %v", got[0].TS)
	}
}

func TestStartAggregateAndJoinPeriodic(t *testing.T) {
	nw := sensornet.Grid(sensornet.DefaultConfig(), 2, 2, 90, 2,
		sensornet.SensorTemperature, sensornet.SensorLight)
	e := NewEngine(nw, constEnv(nil))
	sched := vtime.NewScheduler()
	var aggs, joins []data.Tuple
	ra := e.StartAggregate(&AggregateQuery{Rel: "t", Sensor: sensornet.SensorTemperature,
		Func: AggAvg}, sched, collect(&aggs))
	st, err := e.PlanJoin(&JoinQuery{
		Left:   JoinSide{Rel: "temp", Sensor: sensornet.SensorTemperature},
		Right:  JoinSide{Rel: "light", Sensor: sensornet.SensorLight},
		PairBy: PairSameDesk,
	})
	if err != nil {
		t.Fatal(err)
	}
	rj := e.StartJoin(st, sched, collect(&joins))
	sched.RunUntil(2 * vtime.Second) // default period 1s → 2 epochs
	ra.Stop()
	rj.Stop()
	if len(aggs) != 2 {
		t.Fatalf("agg results = %d", len(aggs))
	}
	if len(joins) == 0 {
		t.Fatalf("no join results")
	}
}
