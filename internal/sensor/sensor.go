// Package sensor implements ASPEN's distributed sensor engine (Fig. 1,
// "Sensor Engine (on devices)"): in-network evaluation of selection,
// aggregation and join queries over the simulated mote field, in
// synchronized epochs.
//
// Its distinguishing feature, following Mihaylov et al. (DMSN'08, the
// paper's ref [13]), is support for in-network joins between devices with a
// per-pair placement decision: the join between a desk's temperature sensor
// and its chair's light sensor can run at either mote or at the base
// station, whichever minimizes expected radio messages. The engine keeps
// online selectivity estimates per node so the decision adapts
// "on a sensor-by-sensor basis" (§3).
package sensor

import (
	"fmt"
	"sync"
	"time"

	"aspen/internal/data"
	"aspen/internal/expr"
	"aspen/internal/sensornet"
	"aspen/internal/vtime"
)

// ReadingSchema returns the fixed schema of raw sensor readings as exposed
// to StreamSQL: (mote INT, room STRING, desk INT, value FLOAT).
func ReadingSchema(rel string) *data.Schema {
	s := data.NewSchema(rel,
		data.Col("mote", data.TInt),
		data.Col("room", data.TString),
		data.Col("desk", data.TInt),
		data.Col("value", data.TFloat),
	)
	s.IsStream = true
	return s
}

// Env supplies physical readings to motes; implemented by the building
// simulator and by test stubs.
type Env interface {
	// Reading returns the current value of the given sensor at the node,
	// and whether the sensor produced a sample this epoch.
	Reading(n sensornet.Node, kind sensornet.SensorKind, now vtime.Time) (float64, bool)
}

// EnvFunc adapts a function to Env.
type EnvFunc func(n sensornet.Node, kind sensornet.SensorKind, now vtime.Time) (float64, bool)

// Reading implements Env.
func (f EnvFunc) Reading(n sensornet.Node, kind sensornet.SensorKind, now vtime.Time) (float64, bool) {
	return f(n, kind, now)
}

// Sink receives query results as they arrive at the base station. The
// delivered tuple is owned by the receiver (engines may buffer it), so the
// engine clones per delivery rather than sharing its sampling buffers.
type Sink func(data.Tuple)

// BatchSink receives one epoch's deliveries as a single batch. The tuples
// are owned by the receiver like Sink deliveries; the slice itself is only
// valid during the call (the scheduler reuses it across epochs), matching
// the stream.BatchOperator contract.
type BatchSink func(ts []data.Tuple)

// epochBatch adapts a BatchSink to the per-tuple epoch runners: collect
// reuses one buffer across epochs, flush delivers the epoch's tuples as
// one batch and releases the references.
type epochBatch struct {
	sink    BatchSink
	buf     []data.Tuple
	stopped bool
}

func (b *epochBatch) collect(t data.Tuple) {
	if b.stopped {
		return
	}
	b.buf = append(b.buf, t)
}

func (b *epochBatch) flush() {
	if len(b.buf) == 0 || b.stopped {
		return
	}
	b.sink(b.buf)
	clear(b.buf) // receiver owns the tuples now; drop our references
	b.buf = b.buf[:0]
}

// detach releases the pooled epoch buffer and severs the sink, so a
// stopped runner retains neither tuples nor the downstream pipeline —
// even when Stop lands mid-epoch (a sink stopping its own query): the
// in-flight epoch finishes collecting into nothing and never flushes.
func (b *epochBatch) detach() {
	b.stopped = true
	clear(b.buf)
	b.buf = nil
	b.sink = nil
}

// startEpochRunner schedules run every period (default 1s), collecting
// each epoch's deliveries and flushing them to sink as one batch — the
// shared engine behind the Start*Batch runners.
func startEpochRunner(sched *vtime.Scheduler, period time.Duration, sink BatchSink, run func(now vtime.Time, deliver Sink)) Runner {
	if period <= 0 {
		period = time.Second
	}
	b := &epochBatch{sink: sink}
	stop := sched.Every(period, func() {
		run(sched.Now(), b.collect)
		b.flush()
	})
	return &handle{stop: stop, release: b.detach}
}

// Engine evaluates sensor queries over one network.
type Engine struct {
	mu  sync.Mutex
	net *sensornet.Network
	env Env
}

// NewEngine creates an engine over the network with the given environment.
func NewEngine(net *sensornet.Network, env Env) *Engine {
	return &Engine{net: net, env: env}
}

// Network returns the underlying simulated network.
func (e *Engine) Network() *sensornet.Network { return e.net }

// sample reads one sensor at one node into a freshly allocated reading
// tuple.
func (e *Engine) sample(n sensornet.Node, kind sensornet.SensorKind, now vtime.Time) (data.Tuple, bool) {
	return e.sampleInto(make([]data.Value, 0, 4), n, kind, now)
}

// sampleInto reads one sensor at one node into a reading tuple backed by
// buf's array when its capacity suffices. Epoch loops pass a scratch
// buffer reused across nodes — the returned tuple is only valid until the
// next sampleInto with the same buffer, so deliveries clone.
func (e *Engine) sampleInto(buf []data.Value, n sensornet.Node, kind sensornet.SensorKind, now vtime.Time) (data.Tuple, bool) {
	if n.Dead || !n.HasSensor(kind) {
		return data.Tuple{}, false
	}
	v, ok := e.env.Reading(n, kind, now)
	if !ok {
		return data.Tuple{}, false
	}
	vals := append(buf[:0],
		data.Int(int64(n.ID)),
		data.Str(n.Room),
		data.Int(int64(n.Desk)),
		data.Float(v),
	)
	return data.Tuple{Vals: vals, TS: now}, true
}

// SelectQuery is a filtered acquisition query: every node carrying Sensor
// samples each epoch, applies Pred locally, and routes passing readings to
// the base station.
type SelectQuery struct {
	Rel    string
	Sensor sensornet.SensorKind
	// Pred is an optional local filter over ReadingSchema(Rel).
	Pred   *expr.Compiled
	Period time.Duration
}

// Schema returns the output schema.
func (q *SelectQuery) Schema() *data.Schema { return ReadingSchema(q.Rel) }

// NodeFilter restricts an epoch run to a subset of motes. Partitioned
// fragment execution (plan-level shard hosting) samples each node on
// exactly one shard: the filter applies to *sampling* only, never to tree
// routing, so a partitioned run's delivered multiset unions to the
// unpartitioned run's.
type NodeFilter func(n sensornet.Node) bool

// RunSelectEpoch executes one epoch of a selection query, delivering
// passing readings to sink. It returns the number of tuples delivered.
// Sampling runs through one scratch buffer for the whole epoch; only
// delivered readings are cloned out.
func (e *Engine) RunSelectEpoch(q *SelectQuery, now vtime.Time, sink Sink) int {
	return e.RunSelectEpochPart(q, now, nil, sink)
}

// RunSelectEpochPart is RunSelectEpoch sampling only the nodes keep admits
// (nil keeps all). It locks the engine, so shard replicas co-hosted on one
// worker process can run their partitions concurrently.
func (e *Engine) RunSelectEpochPart(q *SelectQuery, now vtime.Time, keep NodeFilter, sink Sink) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	base := e.net.Base()
	delivered := 0
	scratch := make([]data.Value, 0, 4)
	for _, n := range e.net.Nodes() {
		if keep != nil && !keep(n) {
			continue
		}
		t, ok := e.sampleInto(scratch, n, q.Sensor, now)
		if !ok {
			continue
		}
		scratch = t.Vals[:0]
		if q.Pred != nil && !q.Pred.EvalBool(t) {
			continue // filtered in-network: no radio traffic at all
		}
		if n.ID == base {
			sink(t.Clone())
			delivered++
			continue
		}
		if e.net.Send(n.ID, base, 1) {
			sink(t.Clone())
			delivered++
		}
	}
	return delivered
}

// handle tracks a periodically scheduled query.
type handle struct {
	stop func()
	// release, when set, frees resources the runner held across epochs
	// (pooled batch buffers); it runs once, after the schedule is
	// cancelled.
	release func()
}

// Stop cancels the periodic execution and releases any pooled buffers the
// runner held. Idempotent.
func (h *handle) Stop() {
	h.stop()
	if h.release != nil {
		h.release()
		h.release = nil
	}
}

// Runner is the handle returned by Start* methods.
type Runner interface{ Stop() }

// StartSelect schedules the query on sched every q.Period (default: 1s).
func (e *Engine) StartSelect(q *SelectQuery, sched *vtime.Scheduler, sink Sink) Runner {
	period := q.Period
	if period <= 0 {
		period = time.Second
	}
	stop := sched.Every(period, func() {
		e.RunSelectEpoch(q, sched.Now(), sink)
	})
	return &handle{stop: stop}
}

// StartSelectBatch is StartSelect delivering each epoch's passing readings
// as one batch instead of tuple-at-a-time.
func (e *Engine) StartSelectBatch(q *SelectQuery, sched *vtime.Scheduler, sink BatchSink) Runner {
	return startEpochRunner(sched, q.Period, sink, func(now vtime.Time, deliver Sink) {
		e.RunSelectEpoch(q, now, deliver)
	})
}

// errNoBase is returned by estimators when the network has no base station.
var errNoBase = fmt.Errorf("sensor: network has no base station")
