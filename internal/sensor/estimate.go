package sensor

import (
	"time"

	"aspen/internal/expr"
)

// CostEstimate is the sensor optimizer's cost report: expected radio
// messages per epoch and the epoch period. The federated optimizer converts
// this into the stream engine's latency-based model using catalog
// statistics (§3: "the federated optimizer must convert everything to one
// model").
type CostEstimate struct {
	MsgsPerEpoch float64
	Period       time.Duration
}

// PerSecond returns the expected message rate.
func (c CostEstimate) PerSecond() float64 {
	if c.Period <= 0 {
		return c.MsgsPerEpoch
	}
	return c.MsgsPerEpoch / c.Period.Seconds()
}

// selEstimate derives a selectivity for a local predicate; 1 when absent.
func selEstimate(pred *expr.Compiled) float64 {
	if pred == nil {
		return 1
	}
	// Reconstruct a crude estimate from the textbook table.
	return 0.3
}

// EstimateSelect predicts messages/epoch for a selection query: each node
// carrying the sensor ships a passing reading over its tree depth.
func (e *Engine) EstimateSelect(q *SelectQuery) (CostEstimate, error) {
	if e.net.Base() < 0 {
		return CostEstimate{}, errNoBase
	}
	sigma := selEstimate(q.Pred)
	msgs := 0.0
	for _, n := range e.net.Nodes() {
		if n.Dead || n.Hops < 0 || !n.HasSensor(q.Sensor) {
			continue
		}
		msgs += sigma * float64(n.Hops)
	}
	return CostEstimate{MsgsPerEpoch: msgs, Period: q.Period}, nil
}

// EstimateAggregate predicts messages/epoch: in-network TAG sends one
// message per participating node per epoch (frame count grows with groups);
// the centralized baseline ships every raw reading over its full depth.
func (e *Engine) EstimateAggregate(q *AggregateQuery) (CostEstimate, error) {
	if e.net.Base() < 0 {
		return CostEstimate{}, errNoBase
	}
	sigma := selEstimate(q.Pred)
	msgs := 0.0
	for _, n := range e.net.Nodes() {
		if n.Dead || n.Hops < 0 || n.ID == e.net.Base() {
			continue
		}
		if q.Mode == AggCentralized {
			if n.HasSensor(q.Sensor) {
				msgs += sigma * float64(n.Hops)
			}
		} else {
			// Every tree node relays one PSR message per epoch. Nodes whose
			// subtree has no readings suppress theirs; approximate with 1.
			msgs++
		}
	}
	return CostEstimate{MsgsPerEpoch: msgs, Period: q.Period}, nil
}

// EstimateJoin predicts messages/epoch using each pair's optimizer-chosen
// placement under current selectivity estimates.
func (e *Engine) EstimateJoin(st *JoinState) (CostEstimate, error) {
	if e.net.Base() < 0 {
		return CostEstimate{}, errNoBase
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	msgs := 0.0
	for _, p := range st.pairs {
		s := st.stats[[2]int{p.l, p.r}]
		join := s.sigmaL * s.sigmaR * s.sigmaJ
		var cost float64
		switch st.choose(p) {
		case PlaceAtLeft:
			cost = s.sigmaR*float64(p.lr) + join*float64(p.lBase)
		case PlaceAtRight:
			cost = s.sigmaL*float64(p.lr) + join*float64(p.rBase)
		default:
			cost = s.sigmaL*float64(p.lBase) + s.sigmaR*float64(p.rBase)
		}
		msgs += cost
	}
	return CostEstimate{MsgsPerEpoch: msgs, Period: st.q.Period}, nil
}
