package sensor

import (
	"testing"
	"time"

	"aspen/internal/data"
	"aspen/internal/sensornet"
	"aspen/internal/vtime"
)

// TestEpochBatchDetachReleasesBuffer is the PR-9 bugfix probe: a stopped
// epoch runner must release its pooled buffer and sever the sink, even when
// the stop lands mid-epoch (collects already issued, flush still pending).
func TestEpochBatchDetachReleasesBuffer(t *testing.T) {
	delivered := 0
	b := &epochBatch{sink: func(ts []data.Tuple) { delivered += len(ts) }}
	b.collect(data.NewTuple(0, data.Int(1)))
	b.collect(data.NewTuple(0, data.Int(2)))
	b.detach() // Stop lands mid-epoch, before the flush
	if b.buf != nil {
		t.Fatal("detach must release the pooled buffer")
	}
	b.collect(data.NewTuple(0, data.Int(3))) // epoch keeps running; must no-op
	b.flush()
	if delivered != 0 {
		t.Fatalf("delivered %d tuples after detach, want 0", delivered)
	}
	if b.buf != nil || b.sink != nil {
		t.Fatal("post-detach collect must not regrow the buffer or revive the sink")
	}
}

// TestRunnerStopMidEpochFromSink stops a batch runner from inside its own
// sink — the reentrant case where a downstream consumer tears the query
// down in reaction to a delivery — and checks nothing arrives afterwards.
func TestRunnerStopMidEpochFromSink(t *testing.T) {
	nw := sensornet.Line(sensornet.DefaultConfig(), 4, 50, sensornet.SensorTemperature)
	e := NewEngine(nw, constEnv(nil))
	sched := vtime.NewScheduler()

	var r Runner
	batches := 0
	r = e.StartSelectBatch(&SelectQuery{Rel: "T", Sensor: sensornet.SensorTemperature},
		sched, func(ts []data.Tuple) {
			batches++
			r.Stop() // reentrant: the delivery stops its own runner
		})
	sched.RunUntil(5 * vtime.Second)
	if batches != 1 {
		t.Fatalf("got %d batches after a first-delivery Stop, want exactly 1", batches)
	}
}

// TestRunnerChurn starts and stops many batch runners against one engine,
// interleaved with epochs, and checks stopped runners never deliver again
// while the survivor keeps going — the leak/aliasing churn probe.
func TestRunnerChurn(t *testing.T) {
	nw := sensornet.Line(sensornet.DefaultConfig(), 4, 50, sensornet.SensorTemperature)
	e := NewEngine(nw, constEnv(nil))
	sched := vtime.NewScheduler()
	q := &SelectQuery{Rel: "T", Sensor: sensornet.SensorTemperature, Period: time.Second}

	counts := make([]int, 8)
	var runners []Runner
	for i := range counts {
		i := i
		runners = append(runners, e.StartSelectBatch(q, sched, func(ts []data.Tuple) {
			counts[i] += len(ts)
		}))
	}
	sched.RunUntil(2 * vtime.Second)
	// Stop all but the last, remembering where each stood; double-Stop one
	// to check idempotence.
	frozen := make([]int, len(counts))
	copy(frozen, counts)
	for _, r := range runners[:len(runners)-1] {
		r.Stop()
	}
	runners[0].Stop()
	sched.RunUntil(6 * vtime.Second)
	for i, r := range counts[:len(counts)-1] {
		if r != frozen[i] {
			t.Fatalf("stopped runner %d delivered %d more tuples", i, r-frozen[i])
		}
	}
	last := len(counts) - 1
	if counts[last] <= frozen[last] {
		t.Fatal("surviving runner stalled after its peers stopped")
	}
}
