package sensor

import (
	"sort"
	"time"

	"aspen/internal/data"
	"aspen/internal/expr"
	"aspen/internal/sensornet"
	"aspen/internal/vtime"
)

// AggFunc enumerates the decomposable aggregates the engine can compute
// in-network (TAG-style partial state records).
type AggFunc uint8

// Aggregate functions.
const (
	AggCount AggFunc = iota
	AggSum
	AggAvg
	AggMin
	AggMax
)

// String names the aggregate.
func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggAvg:
		return "avg"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	}
	return "agg?"
}

// AggMode selects in-network aggregation or the ship-raw baseline used by
// experiment E4.
type AggMode uint8

// Aggregation modes.
const (
	// AggInNetwork merges partial state records hop-by-hop up the
	// collection tree: one message per node per epoch.
	AggInNetwork AggMode = iota
	// AggCentralized ships every raw reading to the base station and
	// aggregates there; the baseline.
	AggCentralized
)

// AggregateQuery aggregates one sensor type across the field each epoch.
type AggregateQuery struct {
	Rel    string
	Sensor sensornet.SensorKind
	// Pred is an optional local filter applied before aggregation.
	Pred *expr.Compiled
	Func AggFunc
	// GroupByRoom groups results per room; otherwise one global group.
	GroupByRoom bool
	Mode        AggMode
	Period      time.Duration
}

// Schema returns the output schema: (room STRING,)? value FLOAT.
func (q *AggregateQuery) Schema() *data.Schema {
	cols := []data.Column{}
	if q.GroupByRoom {
		cols = append(cols, data.Col("room", data.TString))
	}
	cols = append(cols, data.Col("value", data.TFloat))
	s := data.NewSchema(q.Rel, cols...)
	s.IsStream = true
	return s
}

// psr is a partial state record, mergeable without loss for all supported
// aggregates.
type psr struct {
	count    int64
	sum      float64
	min, max float64
	some     bool
}

func (p *psr) add(v float64) {
	if !p.some {
		p.min, p.max = v, v
		p.some = true
	} else {
		if v < p.min {
			p.min = v
		}
		if v > p.max {
			p.max = v
		}
	}
	p.count++
	p.sum += v
}

func (p *psr) merge(o psr) {
	if !o.some {
		return
	}
	if !p.some {
		*p = o
		return
	}
	p.count += o.count
	p.sum += o.sum
	if o.min < p.min {
		p.min = o.min
	}
	if o.max > p.max {
		p.max = o.max
	}
}

func (p *psr) final(f AggFunc) (float64, bool) {
	if !p.some {
		return 0, false
	}
	switch f {
	case AggCount:
		return float64(p.count), true
	case AggSum:
		return p.sum, true
	case AggAvg:
		return p.sum / float64(p.count), true
	case AggMin:
		return p.min, true
	case AggMax:
		return p.max, true
	}
	return 0, false
}

// RunAggregateEpoch executes one epoch, delivering one tuple per group to
// sink. Returns the number of groups delivered.
func (e *Engine) RunAggregateEpoch(q *AggregateQuery, now vtime.Time, sink Sink) int {
	return e.RunAggregateEpochPart(q, now, nil, sink)
}

// RunAggregateEpochPart is RunAggregateEpoch sampling only the nodes keep
// admits (nil keeps all). The filter gates each node's *own sample* — tree
// routing and PSR merging are untouched, and a node contributing nothing
// suppresses its message exactly like an empty group — so a run
// partitioned on the grouping key delivers each admitted group bit-equal
// to the unpartitioned run. It locks the engine (see RunSelectEpochPart).
func (e *Engine) RunAggregateEpochPart(q *AggregateQuery, now vtime.Time, keep NodeFilter, sink Sink) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	if q.Mode == AggCentralized {
		return e.runAggCentral(q, now, keep, sink)
	}
	return e.runAggTAG(q, now, keep, sink)
}

// runAggTAG merges PSRs up the collection tree: process nodes deepest
// first; each non-base node sends its merged group map to its parent in a
// single message whose frame count is the number of groups carried.
func (e *Engine) runAggTAG(q *AggregateQuery, now vtime.Time, keep NodeFilter, sink Sink) int {
	nodes := e.net.Nodes()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Hops > nodes[j].Hops })
	base := e.net.Base()

	pending := map[int]map[string]psr{} // node -> group -> psr
	groupOf := func(n sensornet.Node) string {
		if q.GroupByRoom {
			return n.Room
		}
		return ""
	}

	scratch := make([]data.Value, 0, 4)
	for _, n := range nodes {
		if n.Dead || n.Hops < 0 {
			continue
		}
		groups := pending[n.ID]
		if groups == nil {
			groups = map[string]psr{}
		}
		// own sample (scratch-backed: consumed before the next node samples)
		if keep != nil && !keep(n) {
			// excluded from this partition: still relays children's PSRs
		} else if t, ok := e.sampleInto(scratch, n, q.Sensor, now); ok {
			scratch = t.Vals[:0]
			if q.Pred == nil || q.Pred.EvalBool(t) {
				g := groups[groupOf(n)]
				g.add(t.Vals[3].AsFloat())
				groups[groupOf(n)] = g
			}
		}
		if n.ID == base {
			pending[n.ID] = groups
			continue
		}
		if len(groups) == 0 {
			continue // nothing to report; suppress the message entirely
		}
		parent, ok := e.net.SendToParent(n.ID, len(groups))
		if !ok {
			continue // lost: this subtree's contribution vanishes this epoch
		}
		pg := pending[parent]
		if pg == nil {
			pg = map[string]psr{}
			pending[parent] = pg
		}
		for k, g := range groups {
			cur := pg[k]
			cur.merge(g)
			pg[k] = cur
		}
		delete(pending, n.ID)
	}
	return e.emitGroups(q, pending[base], now, sink)
}

// runAggCentral ships raw readings to the base and aggregates there.
func (e *Engine) runAggCentral(q *AggregateQuery, now vtime.Time, keep NodeFilter, sink Sink) int {
	base := e.net.Base()
	groups := map[string]psr{}
	scratch := make([]data.Value, 0, 4)
	for _, n := range e.net.Nodes() {
		if keep != nil && !keep(n) {
			continue
		}
		t, ok := e.sampleInto(scratch, n, q.Sensor, now)
		if !ok {
			continue
		}
		scratch = t.Vals[:0]
		if q.Pred != nil && !q.Pred.EvalBool(t) {
			continue
		}
		if n.ID != base && !e.net.Send(n.ID, base, 1) {
			continue
		}
		key := ""
		if q.GroupByRoom {
			key = n.Room
		}
		g := groups[key]
		g.add(t.Vals[3].AsFloat())
		groups[key] = g
	}
	return e.emitGroups(q, groups, now, sink)
}

func (e *Engine) emitGroups(q *AggregateQuery, groups map[string]psr, now vtime.Time, sink Sink) int {
	if len(groups) == 0 {
		return 0
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	emitted := 0
	for _, k := range keys {
		g := groups[k]
		v, ok := g.final(q.Func)
		if !ok {
			continue
		}
		if q.GroupByRoom {
			sink(data.NewTuple(now, data.Str(k), data.Float(v)))
		} else {
			sink(data.NewTuple(now, data.Float(v)))
		}
		emitted++
	}
	return emitted
}

// StartAggregate schedules the query every q.Period (default 1s).
func (e *Engine) StartAggregate(q *AggregateQuery, sched *vtime.Scheduler, sink Sink) Runner {
	period := q.Period
	if period <= 0 {
		period = time.Second
	}
	stop := sched.Every(period, func() {
		e.RunAggregateEpoch(q, sched.Now(), sink)
	})
	return &handle{stop: stop}
}

// StartAggregateBatch is StartAggregate delivering each epoch's group rows
// as one batch instead of tuple-at-a-time.
func (e *Engine) StartAggregateBatch(q *AggregateQuery, sched *vtime.Scheduler, sink BatchSink) Runner {
	return startEpochRunner(sched, q.Period, sink, func(now vtime.Time, deliver Sink) {
		e.RunAggregateEpoch(q, now, deliver)
	})
}
