package gui

import (
	"strings"
	"testing"

	"aspen/internal/building"
	"aspen/internal/smartcis"
)

func demoApp(t *testing.T) *smartcis.App {
	t.Helper()
	app, err := smartcis.New(smartcis.Options{
		Building:       building.GenConfig{Labs: 2, DesksPerLab: 3, HallSpacing: 100, Offices: 1},
		Seed:           7,
		SkipPDUServers: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(app.Close)
	return app
}

func TestRenderShowsRoomsAndDesks(t *testing.T) {
	app := demoApp(t)
	out := Render(app, Options{})
	for _, want := range []string{"L101", "L102", "O201", "MR1", "lobby"} {
		if !strings.Contains(out, want) {
			t.Fatalf("frame missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "o") {
		t.Fatalf("no free desks drawn:\n%s", out)
	}
	if strings.Count(out, "░") > 1 { // the legend itself shows one
		t.Fatalf("shading in an all-open building:\n%s", out)
	}
	if !strings.Contains(out, "#") || !strings.Contains(out, "=") {
		t.Fatalf("hallway spine missing:\n%s", out)
	}
}

func TestRenderClosedRoomShadedAndOccupiedDesks(t *testing.T) {
	app := demoApp(t)
	app.SetRoomLights("L102", false)
	app.SetDeskOccupied("L101", 1, true)
	out := Render(app, Options{})
	if !strings.Contains(out, "L102 (closed)") {
		t.Fatalf("closed label missing:\n%s", out)
	}
	if strings.Count(out, "░") <= 1 {
		t.Fatalf("closed room not shaded:\n%s", out)
	}
	if !strings.Contains(out, "x") {
		t.Fatalf("occupied desk not drawn:\n%s", out)
	}
}

func TestRenderRouteAndVisitor(t *testing.T) {
	app := demoApp(t)
	app.VisitorArrives("alice")
	if err := app.MoveVisitorTo("alice", "hall1"); err != nil {
		t.Fatal(err)
	}
	g, err := app.Guide("alice", "fedora linux")
	if err != nil {
		t.Fatal(err)
	}
	out := Render(app, Options{Route: &g.Route, Visitor: "alice"})
	if !strings.Contains(out, "*") {
		t.Fatalf("route not plotted:\n%s", out)
	}
	if !strings.Contains(out, "@") {
		t.Fatalf("visitor not drawn:\n%s", out)
	}
	if !strings.Contains(out, "!") {
		t.Fatalf("destination not marked:\n%s", out)
	}
}

func TestRenderStatusPanel(t *testing.T) {
	app := demoApp(t)
	status := StatusPanel(app, map[string]string{
		"occupancy": "push in-network-join over {t, l}",
	})
	out := Render(app, Options{Status: status})
	if !strings.Contains(out, "motes:") || !strings.Contains(out, "occupancy: push in-network-join") {
		t.Fatalf("status panel missing:\n%s", out)
	}
	if !strings.Contains(out, "min mote battery") {
		t.Fatalf("battery line missing:\n%s", out)
	}
}

func TestRenderDeterministic(t *testing.T) {
	app := demoApp(t)
	a := Render(app, Options{})
	b := Render(app, Options{})
	if a != b {
		t.Fatal("rendering is not deterministic")
	}
}

func TestCanvasBoundsSafe(t *testing.T) {
	c := newCanvas(4, 3)
	c.set(-1, -1, 'x')
	c.set(99, 99, 'x')
	c.text(2, 1, "long text running off the edge")
	c.hline(-5, 99, 1, '-')
	c.vline(2, -5, 99, '|')
	if got := c.get(99, 99); got != ' ' {
		t.Fatalf("out-of-bounds get = %q", got)
	}
	_ = c.String()
}
