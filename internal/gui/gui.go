// Package gui renders the SmartCIS graphical interface of Figure 2 as
// text: the building layout with open and closed (shaded) labs, free and
// unavailable machines, the visitor's position, a plotted route to the
// recommended machine, and a status panel showing live query-plan
// information — everything the paper's demo screen shows, in a terminal.
package gui

import (
	"fmt"
	"strings"

	"aspen/internal/building"
	"aspen/internal/routing"
	"aspen/internal/smartcis"
)

// Options controls a frame rendering.
type Options struct {
	// Route, when set, is plotted with '*' between its points.
	Route *routing.Route
	// Visitor, when set, draws '@' at the visitor's located point.
	Visitor string
	// Status lines are printed under the map (query plans, alarms...).
	Status []string
	// CellsPerFootX/Y scale feet into character cells (defaults 1/6, 1/12).
	CellsPerFootX, CellsPerFootY float64
}

// canvas is a mutable character grid.
type canvas struct {
	w, h  int
	cells [][]rune
}

func newCanvas(w, h int) *canvas {
	c := &canvas{w: w, h: h, cells: make([][]rune, h)}
	for i := range c.cells {
		row := make([]rune, w)
		for j := range row {
			row[j] = ' '
		}
		c.cells[i] = row
	}
	return c
}

func (c *canvas) set(x, y int, r rune) {
	if x >= 0 && x < c.w && y >= 0 && y < c.h {
		c.cells[y][x] = r
	}
}

func (c *canvas) get(x, y int) rune {
	if x >= 0 && x < c.w && y >= 0 && y < c.h {
		return c.cells[y][x]
	}
	return ' '
}

func (c *canvas) text(x, y int, s string) {
	for i, r := range s {
		c.set(x+i, y, r)
	}
}

func (c *canvas) hline(x1, x2, y int, r rune) {
	if x2 < x1 {
		x1, x2 = x2, x1
	}
	for x := x1; x <= x2; x++ {
		c.set(x, y, r)
	}
}

func (c *canvas) vline(x, y1, y2 int, r rune) {
	if y2 < y1 {
		y1, y2 = y2, y1
	}
	for y := y1; y <= y2; y++ {
		c.set(x, y, r)
	}
}

func (c *canvas) String() string {
	var b strings.Builder
	for _, row := range c.cells {
		b.WriteString(strings.TrimRight(string(row), " "))
		b.WriteByte('\n')
	}
	return b.String()
}

// Render draws one frame of the current deployment state.
func Render(app *smartcis.App, opts Options) string {
	sx := opts.CellsPerFootX
	if sx <= 0 {
		sx = 1.0 / 6
	}
	sy := opts.CellsPerFootY
	if sy <= 0 {
		sy = 1.0 / 12
	}
	minX, minY, maxX, maxY := app.Building.Bounds()
	pad := 2.0
	toCell := func(x, y float64) (int, int) {
		return int((x - minX + pad) * sx), int((maxY - y + pad) * sy)
	}
	w, h := toCell(maxX+2*pad, minY-2*pad)
	c := newCanvas(w+2, h+2)

	// Rooms.
	for i := range app.Building.Rooms {
		r := &app.Building.Rooms[i]
		x1, y1 := toCell(r.X, r.Y+r.H)
		x2, y2 := toCell(r.X+r.W, r.Y)
		c.hline(x1, x2, y1, '-')
		c.hline(x1, x2, y2, '-')
		c.vline(x1, y1, y2, '|')
		c.vline(x2, y1, y2, '|')
		for _, corner := range [][2]int{{x1, y1}, {x2, y1}, {x1, y2}, {x2, y2}} {
			c.set(corner[0], corner[1], '+')
		}
		closed := r.Kind != building.Lobby && !app.RoomLit(r.Name)
		if closed {
			for y := y1 + 1; y < y2; y++ {
				for x := x1 + 1; x < x2; x++ {
					c.set(x, y, '░')
				}
			}
		}
		label := r.Name
		if closed {
			label += " (closed)"
		}
		c.text(x1+1, y1, label)
		// Desks: 'o' free seat, 'x' occupied, shown inside open rooms.
		if !closed {
			for _, d := range r.Desks {
				dx, dy := toCell(d.X, d.Y)
				glyph := 'o'
				if app.DeskOccupied(r.Name, d.Num) {
					glyph = 'x'
				}
				c.set(dx, dy, glyph)
			}
		}
	}

	// Hallway spine between routing points.
	pts := app.Building.Points()
	for _, e := range app.Building.RoutingEdges() {
		p1, ok1 := app.Building.Point(e.From)
		p2, ok2 := app.Building.Point(e.To)
		if !ok1 || !ok2 {
			continue
		}
		if !strings.HasPrefix(e.From, "hall") && e.From != "lobby" {
			continue
		}
		if !strings.HasPrefix(e.To, "hall") && e.To != "lobby" {
			continue
		}
		x1, y1 := toCell(p1.X, p1.Y)
		x2, _ := toCell(p2.X, p2.Y)
		c.hline(x1, x2, y1, '=')
	}
	for _, p := range pts {
		if strings.HasPrefix(p.Name, "hall") || p.Name == "lobby" {
			x, y := toCell(p.X, p.Y)
			c.set(x, y, '#')
		}
	}

	// Route overlay.
	if opts.Route != nil && len(opts.Route.Points) > 1 {
		for i := 0; i+1 < len(opts.Route.Points); i++ {
			p1, ok1 := app.Building.Point(opts.Route.Points[i])
			p2, ok2 := app.Building.Point(opts.Route.Points[i+1])
			if !ok1 || !ok2 {
				continue
			}
			drawSegment(c, toCell, p1.X, p1.Y, p2.X, p2.Y)
		}
		if last, ok := app.Building.Point(opts.Route.Points[len(opts.Route.Points)-1]); ok {
			x, y := toCell(last.X, last.Y)
			c.set(x, y, '!')
		}
	}

	// Visitor marker.
	if opts.Visitor != "" {
		if at, ok := app.LocateVisitor(opts.Visitor); ok {
			if p, ok := app.Building.Point(at); ok {
				x, y := toCell(p.X, p.Y)
				c.set(x, y, '@')
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "SmartCIS — %s   (o free desk, x occupied, ░ closed, * route, @ visitor)\n",
		app.Building.Name)
	b.WriteString(c.String())
	if len(opts.Status) > 0 {
		b.WriteString(strings.Repeat("-", 72))
		b.WriteByte('\n')
		for _, s := range opts.Status {
			b.WriteString(s)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// drawSegment rasterizes a straight route segment with '*'.
func drawSegment(c *canvas, toCell func(float64, float64) (int, int), x1, y1, x2, y2 float64) {
	steps := 24
	for i := 0; i <= steps; i++ {
		t := float64(i) / float64(steps)
		x, y := toCell(x1+(x2-x1)*t, y1+(y2-y1)*t)
		if r := c.get(x, y); r == ' ' || r == '=' || r == '#' || r == '░' {
			c.set(x, y, '*')
		}
	}
}

// StatusPanel formats the live query/plan panel the demo shows alongside
// the map (§4: "real-time information about the actual computations being
// performed").
func StatusPanel(app *smartcis.App, queries map[string]string) []string {
	var out []string
	out = append(out, fmt.Sprintf("motes: %d alive (diameter %d hops); radio: %d msgs, %.1f mJ",
		countAlive(app), app.Net.Diameter(), app.Net.Metrics().Sent, app.Net.Metrics().EnergyMJ))
	out = append(out, fmt.Sprintf("min mote battery: %.1f mJ", app.Net.MinBattery()))
	for name, plan := range queries {
		out = append(out, fmt.Sprintf("%s: %s", name, plan))
	}
	return out
}

func countAlive(app *smartcis.App) int {
	n := 0
	for _, node := range app.Net.Nodes() {
		if !node.Dead {
			n++
		}
	}
	return n
}
