package gui

import (
	"io"
	"sync"

	"aspen/internal/stream"
)

// Repainter coalesces display updates into at most one frame render per
// paint cycle. Materialized query results mark it dirty through their
// OnChange hooks (already one notification per delta batch, not per
// tuple); the demo loop calls Paint once per epoch, so a burst of sensor
// deliveries costs a single render instead of one per change — the
// batched repaint path matching the engine's batched delta propagation.
type Repainter struct {
	mu     sync.Mutex
	dirty  bool
	paints int64
	render func() string
	out    io.Writer
}

// NewRepainter builds a repainter writing render() frames to out.
func NewRepainter(out io.Writer, render func() string) *Repainter {
	return &Repainter{out: out, render: render}
}

// Watch marks the repainter dirty whenever the materialized result
// changes, chaining any OnChange hook already installed. Changes arriving
// from shard workers are safe: the hook installs under the materialize's
// lock, Invalidate is locked, and Paint runs on the demo goroutine.
func (r *Repainter) Watch(m *stream.Materialize) {
	m.ChainOnChange(r.Invalidate)
}

// Invalidate marks the current frame stale.
func (r *Repainter) Invalidate() {
	r.mu.Lock()
	r.dirty = true
	r.mu.Unlock()
}

// Paint renders one frame if anything changed since the last call and
// reports whether it painted.
func (r *Repainter) Paint() bool {
	r.mu.Lock()
	if !r.dirty {
		r.mu.Unlock()
		return false
	}
	r.dirty = false
	r.paints++
	r.mu.Unlock()
	io.WriteString(r.out, r.render())
	return true
}

// Paints returns the number of frames rendered so far.
func (r *Repainter) Paints() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.paints
}
