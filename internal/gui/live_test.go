package gui

import (
	"strings"
	"testing"

	"aspen/internal/data"
	"aspen/internal/stream"
)

// TestRepainterCoalescesChanges checks that a burst of materialize
// mutations costs one render, unchanged cycles render nothing, and the
// chained OnChange hook keeps firing.
func TestRepainterCoalescesChanges(t *testing.T) {
	schema := data.NewSchema("d", data.Col("room", data.TString))
	m := stream.NewMaterialize(schema)
	chained := 0
	m.OnChange = func() { chained++ }

	var out strings.Builder
	frames := 0
	r := NewRepainter(&out, func() string {
		frames++
		return "frame\n"
	})
	r.Watch(m)

	if r.Paint() {
		t.Fatal("painted with nothing dirty")
	}

	// A whole epoch's worth of deltas: one batch, one repaint.
	batch := make([]data.Tuple, 0, 8)
	for i := 0; i < 8; i++ {
		batch = append(batch, data.NewTuple(1, data.Str("L101")))
	}
	m.PushBatch(batch)
	if !r.Paint() {
		t.Fatal("no paint after changes")
	}
	if frames != 1 {
		t.Fatalf("rendered %d frames for one epoch, want 1", frames)
	}
	if chained == 0 {
		t.Fatal("pre-existing OnChange hook was dropped")
	}
	if r.Paint() {
		t.Fatal("painted again without new changes")
	}
	if got := r.Paints(); got != 1 {
		t.Fatalf("Paints() = %d, want 1", got)
	}
	if out.String() != "frame\n" {
		t.Fatalf("out = %q", out.String())
	}

	m.Push(data.NewTuple(2, data.Str("L102")))
	if !r.Paint() || r.Paints() != 2 {
		t.Fatalf("second change did not repaint (paints=%d)", r.Paints())
	}
}
