package building

import (
	"strings"
	"testing"
)

func TestGenerateDefault(t *testing.T) {
	b := Generate(DefaultConfig())
	// 1 lobby + 4 labs + 2 offices + 1 machine room
	if len(b.Rooms) != 8 {
		t.Fatalf("rooms = %d", len(b.Rooms))
	}
	labs := b.Labs()
	if len(labs) != 4 || labs[0].Name != "L101" {
		t.Fatalf("labs = %v", labs)
	}
	if len(labs[0].Desks) != 6 {
		t.Fatalf("desks = %d", len(labs[0].Desks))
	}
	if _, ok := b.Room("MR1"); !ok {
		t.Fatal("machine room missing")
	}
	if _, ok := b.Room("nope"); ok {
		t.Fatal("phantom room")
	}
}

func TestDeterministic(t *testing.T) {
	a := Generate(DefaultConfig())
	b := Generate(DefaultConfig())
	pa, pb := a.Points(), b.Points()
	if len(pa) != len(pb) {
		t.Fatal("point counts differ")
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("point %d differs: %v vs %v", i, pa[i], pb[i])
		}
	}
	if len(a.RoutingEdges()) != len(b.RoutingEdges()) {
		t.Fatal("edges differ")
	}
}

func TestRoutingGraphConnectivity(t *testing.T) {
	b := Generate(DefaultConfig())
	g := b.Graph()
	// every room point must be reachable from the lobby
	d := g.Distances("lobby")
	for _, r := range b.Rooms {
		if r.Kind == Lobby {
			continue
		}
		if _, ok := d[r.Name]; !ok {
			t.Fatalf("%s unreachable from lobby", r.Name)
		}
	}
	// farther labs are farther away
	if d["L101"] >= d["L104"] {
		t.Fatalf("distance ordering wrong: L101=%v L104=%v", d["L101"], d["L104"])
	}
	// route renders sensibly
	r, ok := g.Shortest("lobby", "L103")
	if !ok || !strings.Contains(r.String(), "hall") {
		t.Fatalf("route = %v %t", r, ok)
	}
}

func TestRoutingEdgesTableSymmetric(t *testing.T) {
	b := Generate(DefaultConfig())
	edges := b.RoutingEdges()
	seen := map[string]float64{}
	for _, e := range edges {
		seen[e.From+">"+e.To] = e.Dist
	}
	for _, e := range edges {
		back, ok := seen[e.To+">"+e.From]
		if !ok || back != e.Dist {
			t.Fatalf("asymmetric edge %v", e)
		}
		if e.Dist <= 0 {
			t.Fatalf("non-positive distance %v", e)
		}
	}
}

func TestDeskPositionsInsideRoom(t *testing.T) {
	b := Generate(DefaultConfig())
	for _, lab := range b.Labs() {
		for _, d := range lab.Desks {
			if !lab.Contains(d.X, d.Y) {
				t.Fatalf("desk %d of %s at (%v,%v) outside room box", d.Num, lab.Name, d.X, d.Y)
			}
		}
	}
	x, y, ok := b.DeskPosition("L101", 1)
	if !ok || x == 0 && y == 0 {
		t.Fatalf("desk position = %v %v %t", x, y, ok)
	}
	if _, _, ok := b.DeskPosition("L101", 99); ok {
		t.Fatal("phantom desk")
	}
	if _, _, ok := b.DeskPosition("nope", 1); ok {
		t.Fatal("phantom room desk")
	}
}

func TestRoomAtAndNearestPoint(t *testing.T) {
	b := Generate(DefaultConfig())
	lab, _ := b.Room("L101")
	cx, cy := lab.Center()
	r, ok := b.RoomAt(cx, cy)
	if !ok || r.Name != "L101" {
		t.Fatalf("RoomAt center = %v %t", r, ok)
	}
	if _, ok := b.RoomAt(9999, 9999); ok {
		t.Fatal("phantom room at infinity")
	}
	p := b.NearestPoint(5, 0)
	if p.Name != "lobby" {
		t.Fatalf("nearest to origin = %v", p)
	}
}

func TestPointsLookup(t *testing.T) {
	b := Generate(DefaultConfig())
	if _, ok := b.Point("hall1"); !ok {
		t.Fatal("hall1 missing")
	}
	if _, ok := b.Point("hall99"); ok {
		t.Fatal("phantom hall")
	}
	pts := b.Points()
	for i := 1; i < len(pts); i++ {
		if pts[i-1].Name >= pts[i].Name {
			t.Fatal("points not sorted")
		}
	}
}

func TestGenerateDegenerateConfigs(t *testing.T) {
	b := Generate(GenConfig{})
	if len(b.Labs()) != 1 {
		t.Fatalf("degenerate labs = %d", len(b.Labs()))
	}
	if len(b.Labs()[0].Desks) != 1 {
		t.Fatal("degenerate desks")
	}
	big := Generate(GenConfig{Labs: 12, DesksPerLab: 10, HallSpacing: 50, Offices: 6})
	if len(big.Labs()) != 12 {
		t.Fatal("big config")
	}
	d := big.Graph().Distances("lobby")
	if _, ok := d["L112"]; !ok {
		t.Fatal("far lab unreachable in big building")
	}
}

func TestBounds(t *testing.T) {
	b := Generate(DefaultConfig())
	minX, minY, maxX, maxY := b.Bounds()
	if minX >= maxX || minY >= maxY {
		t.Fatalf("bounds degenerate: %v %v %v %v", minX, minY, maxX, maxY)
	}
	if minX > -60 || maxY < 50 {
		t.Fatalf("bounds miss rooms: %v %v %v %v", minX, minY, maxX, maxY)
	}
}

func TestRoomKindString(t *testing.T) {
	for k, want := range map[RoomKind]string{Lab: "lab", Office: "office", Lobby: "lobby", MachineRoom: "machine-room"} {
		if k.String() != want {
			t.Errorf("%d = %q", k, k.String())
		}
	}
	if RoomKind(9).String() != "room?" {
		t.Error("unknown kind")
	}
}
