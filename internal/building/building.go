// Package building models the physical environment SmartCIS instruments: a
// synthetic stand-in for Penn's Moore building with laboratories, offices,
// desks, hallways, and the "routing points" table (§2) that path queries
// run over. Geometry is in feet; the generator is deterministic so every
// experiment sees the same building.
package building

import (
	"fmt"
	"math"
	"sort"

	"aspen/internal/routing"
)

// RoomKind classifies rooms.
type RoomKind uint8

// Room kinds.
const (
	Lab RoomKind = iota
	Office
	Lobby
	MachineRoom
)

// String names the kind.
func (k RoomKind) String() string {
	switch k {
	case Lab:
		return "lab"
	case Office:
		return "office"
	case Lobby:
		return "lobby"
	case MachineRoom:
		return "machine-room"
	}
	return "room?"
}

// Desk is one seat position inside a room.
type Desk struct {
	Num  int
	X, Y float64
}

// Room is one room with its doorway onto the hallway.
type Room struct {
	Name         string
	Kind         RoomKind
	X, Y, W, H   float64 // bounding box (X, Y = lower-left corner)
	DoorX, DoorY float64
	Desks        []Desk
}

// Center returns the room's center point.
func (r *Room) Center() (float64, float64) { return r.X + r.W/2, r.Y + r.H/2 }

// Contains reports whether the point lies inside the room's box.
func (r *Room) Contains(x, y float64) bool {
	return x >= r.X && x <= r.X+r.W && y >= r.Y && y <= r.Y+r.H
}

// Point is a named routing point with coordinates.
type Point struct {
	Name string
	X, Y float64
}

// Edge is one routing-table row: a traversable segment with its length.
type Edge struct {
	From, To string
	Dist     float64
}

// Building is the generated environment.
type Building struct {
	Name   string
	Rooms  []Room
	points map[string]Point
	edges  []Edge
	graph  *routing.Graph
}

// GenConfig parameterizes the generator.
type GenConfig struct {
	// Labs is the number of laboratories along the hallway.
	Labs int
	// DesksPerLab is the number of desks in each lab.
	DesksPerLab int
	// HallSpacing is the distance between hallway routing points; the
	// paper's motes sit "every 100 feet".
	HallSpacing float64
	// Offices adds offices past the labs.
	Offices int
}

// DefaultConfig is the demo deployment: 4 labs of 6 desks plus 2 offices.
func DefaultConfig() GenConfig {
	return GenConfig{Labs: 4, DesksPerLab: 6, HallSpacing: 100, Offices: 2}
}

// Generate lays out the building: a lobby at the west end, a straight
// east-west hallway with routing points every HallSpacing feet, labs on the
// north side, offices on the south side, and a machine room at the east
// end. All rooms connect to the hallway through their door point.
func Generate(cfg GenConfig) *Building {
	if cfg.Labs <= 0 {
		cfg.Labs = 1
	}
	if cfg.DesksPerLab <= 0 {
		cfg.DesksPerLab = 1
	}
	if cfg.HallSpacing <= 0 {
		cfg.HallSpacing = 100
	}
	b := &Building{
		Name:   "Moore (synthetic)",
		points: map[string]Point{},
		graph:  routing.NewGraph(),
	}
	hallY := 0.0
	roomDepth := 40.0

	addPoint := func(name string, x, y float64) {
		b.points[name] = Point{Name: name, X: x, Y: y}
	}
	addEdge := func(a, bname string) {
		pa, pb := b.points[a], b.points[bname]
		d := math.Hypot(pa.X-pb.X, pa.Y-pb.Y)
		if d == 0 {
			d = 1
		}
		b.edges = append(b.edges, Edge{From: a, To: bname, Dist: d})
		b.edges = append(b.edges, Edge{From: bname, To: a, Dist: d})
		if err := b.graph.AddBoth(a, bname, d); err != nil {
			panic(err) // distances are non-negative by construction
		}
	}

	// Lobby and hallway spine.
	addPoint("lobby", 0, hallY)
	lobby := Room{Name: "lobby", Kind: Lobby, X: -60, Y: -25, W: 60, H: 50,
		DoorX: 0, DoorY: hallY}
	b.Rooms = append(b.Rooms, lobby)

	segments := cfg.Labs
	if cfg.Offices > segments {
		segments = cfg.Offices
	}
	hallPoints := []string{"lobby"}
	for i := 1; i <= segments+1; i++ {
		name := fmt.Sprintf("hall%d", i)
		addPoint(name, float64(i)*cfg.HallSpacing, hallY)
		addEdge(hallPoints[len(hallPoints)-1], name)
		hallPoints = append(hallPoints, name)
	}

	// Labs on the north side, one per hallway segment.
	for i := 0; i < cfg.Labs; i++ {
		name := fmt.Sprintf("L%d", 101+i)
		x := float64(i+1) * cfg.HallSpacing
		room := Room{
			Name: name, Kind: Lab,
			X: x - 35, Y: hallY + 10, W: 70, H: roomDepth,
			DoorX: x, DoorY: hallY + 10,
		}
		for d := 0; d < cfg.DesksPerLab; d++ {
			cols := 3
			dx := room.X + 12 + float64(d%cols)*22
			dy := room.Y + 10 + float64(d/cols)*18
			room.Desks = append(room.Desks, Desk{Num: d + 1, X: dx, Y: dy})
		}
		b.Rooms = append(b.Rooms, room)
		addPoint(name, x, hallY+10+roomDepth/2)
		addEdge(hallPoints[i+1], name)
	}

	// Offices on the south side.
	for i := 0; i < cfg.Offices; i++ {
		name := fmt.Sprintf("O%d", 201+i)
		x := float64(i+1) * cfg.HallSpacing
		room := Room{
			Name: name, Kind: Office,
			X: x - 25, Y: hallY - 10 - roomDepth, W: 50, H: roomDepth,
			DoorX: x, DoorY: hallY - 10,
		}
		room.Desks = append(room.Desks, Desk{Num: 1, X: x, Y: hallY - 10 - roomDepth/2})
		b.Rooms = append(b.Rooms, room)
		addPoint(name, x, hallY-10-roomDepth/2)
		addEdge(hallPoints[i+1], name)
	}

	// Machine room at the east end.
	mr := Room{
		Name: "MR1", Kind: MachineRoom,
		X: float64(segments+1)*cfg.HallSpacing + 10, Y: hallY - 20,
		W: 60, H: 40,
		DoorX: float64(segments+1) * cfg.HallSpacing, DoorY: hallY,
	}
	for d := 0; d < 4; d++ {
		mr.Desks = append(mr.Desks, Desk{Num: d + 1, X: mr.X + 10 + float64(d)*12, Y: mr.Y + 20})
	}
	b.Rooms = append(b.Rooms, mr)
	addPoint("MR1", mr.X+mr.W/2, mr.Y+mr.H/2)
	addEdge(hallPoints[len(hallPoints)-1], "MR1")

	sort.Slice(b.Rooms, func(i, j int) bool { return b.Rooms[i].Name < b.Rooms[j].Name })
	return b
}

// Graph returns the routing graph over the building's points.
func (b *Building) Graph() *routing.Graph { return b.graph }

// RoutingEdges returns the routing-point table rows (§2's database table).
func (b *Building) RoutingEdges() []Edge {
	out := make([]Edge, len(b.edges))
	copy(out, b.edges)
	return out
}

// Points returns all routing points sorted by name.
func (b *Building) Points() []Point {
	out := make([]Point, 0, len(b.points))
	for _, p := range b.points {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Point looks up a routing point by name.
func (b *Building) Point(name string) (Point, bool) {
	p, ok := b.points[name]
	return p, ok
}

// Room looks up a room by name.
func (b *Building) Room(name string) (*Room, bool) {
	for i := range b.Rooms {
		if b.Rooms[i].Name == name {
			return &b.Rooms[i], true
		}
	}
	return nil, false
}

// Labs returns the lab rooms sorted by name.
func (b *Building) Labs() []*Room {
	var out []*Room
	for i := range b.Rooms {
		if b.Rooms[i].Kind == Lab {
			out = append(out, &b.Rooms[i])
		}
	}
	return out
}

// DeskPosition returns the coordinates of a desk.
func (b *Building) DeskPosition(room string, desk int) (x, y float64, ok bool) {
	r, found := b.Room(room)
	if !found {
		return 0, 0, false
	}
	for _, d := range r.Desks {
		if d.Num == desk {
			return d.X, d.Y, true
		}
	}
	return 0, 0, false
}

// RoomAt returns the room containing the point, if any.
func (b *Building) RoomAt(x, y float64) (*Room, bool) {
	for i := range b.Rooms {
		if b.Rooms[i].Contains(x, y) {
			return &b.Rooms[i], true
		}
	}
	return nil, false
}

// NearestPoint returns the routing point closest to the coordinates; used
// to snap an RFID sighting to the routing graph.
func (b *Building) NearestPoint(x, y float64) Point {
	var best Point
	bestD := math.Inf(1)
	for _, p := range b.points {
		d := math.Hypot(p.X-x, p.Y-y)
		if d < bestD || (d == bestD && p.Name < best.Name) {
			best, bestD = p, d
		}
	}
	return best
}

// Bounds returns the bounding box of the whole building.
func (b *Building) Bounds() (minX, minY, maxX, maxY float64) {
	minX, minY = math.Inf(1), math.Inf(1)
	maxX, maxY = math.Inf(-1), math.Inf(-1)
	for _, r := range b.Rooms {
		minX = math.Min(minX, r.X)
		minY = math.Min(minY, r.Y)
		maxX = math.Max(maxX, r.X+r.W)
		maxY = math.Max(maxY, r.Y+r.H)
	}
	return
}
