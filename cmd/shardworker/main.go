// Shardworker hosts remote shard replicas for distributed plan execution:
// a coordinator compiled with Parallelism=P and a node topology
// (core.Config.Nodes / plan.CompileOptions.Nodes) deploys replica subplans
// here over the shard frame protocol (columnar batch bodies, every
// deployment from one coordinator multiplexed over one TCP connection as
// its own stream id), streams hash-partitioned batches and clock ticks
// in, and receives result (or partial-aggregate) rows back — the paper's
// "replicas live on different PCs" deployment model.
//
// With -sensors the worker additionally hosts a deterministic synthetic
// sensor field: deploy specs carrying sensor fragments over the named
// sources run their partitioned epochs inside this process, next to the
// shard replicas they feed (the paper's in-network execution pushed all
// the way to the machine holding the motes). Coordinators advertise the
// hosted sources through node affinity annotations ("addr=src1,src2" in
// core.Config.Nodes) so locality placement routes the right shards here.
//
//	go run ./cmd/shardworker -listen 127.0.0.1:7070
//	go run ./cmd/shardworker                # ephemeral port, printed on stdout
//	go run ./cmd/shardworker -sensors "lablight=light,labtemp=temperature"
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"aspen/internal/plan"
	"aspen/internal/sensor"
	"aspen/internal/sensornet"
	"aspen/internal/vtime"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "address to serve shard replicas on")
	sensors := flag.String("sensors", "", `host a synthetic sensor field serving these sources: comma-separated name=kind pairs (kinds: light, temperature, rfid), e.g. "lablight=light,labtemp=temperature"`)
	rows := flag.Int("grid-rows", 8, "synthetic field grid rows (with -sensors)")
	cols := flag.Int("grid-cols", 8, "synthetic field grid columns (with -sensors)")
	seed := flag.Int64("seed", 1, "synthetic field radio-loss seed (with -sensors)")
	flag.Parse()

	hosts, err := buildHosts(*sensors, *rows, *cols, *seed)
	if err != nil {
		log.Fatal(err)
	}
	w, err := plan.NewSensorWorker(*listen, hosts)
	if err != nil {
		log.Fatal(err)
	}
	// The address line is machine-readable: tests and launch scripts parse
	// it to learn an ephemeral port.
	fmt.Printf("shardworker listening %s\n", w.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
}

// buildHosts parses the -sensors source list and stands up one synthetic
// grid field carrying every named kind, registered under each source name.
func buildHosts(spec string, rows, cols int, seed int64) (*plan.SensorHosts, error) {
	if spec == "" {
		return nil, nil
	}
	byName := map[string]sensornet.SensorKind{}
	kinds := []sensornet.SensorKind{}
	seen := map[sensornet.SensorKind]bool{}
	for _, pair := range strings.Split(spec, ",") {
		name, kindName, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return nil, fmt.Errorf("shardworker: -sensors entry %q is not name=kind", pair)
		}
		var kind sensornet.SensorKind
		switch strings.ToLower(strings.TrimSpace(kindName)) {
		case "light":
			kind = sensornet.SensorLight
		case "temperature":
			kind = sensornet.SensorTemperature
		case "rfid":
			kind = sensornet.SensorRFID
		default:
			return nil, fmt.Errorf("shardworker: unknown sensor kind %q", kindName)
		}
		byName[strings.TrimSpace(name)] = kind
		if !seen[kind] {
			seen[kind] = true
			kinds = append(kinds, kind)
		}
	}
	cfg := sensornet.DefaultConfig()
	cfg.Seed = seed
	nw := sensornet.Grid(cfg, rows, cols, 100, cols, kinds...)
	eng := sensor.NewEngine(nw, sensor.EnvFunc(syntheticEnv))
	hosts := plan.NewSensorHosts()
	for name := range byName {
		hosts.Add(name, eng)
	}
	return hosts, nil
}

// syntheticEnv is a pure function of (node, sensor, instant): every process
// that builds the same field sees identical readings, so a coordinator
// running the matching field centrally stays bit-equal with this worker.
func syntheticEnv(n sensornet.Node, kind sensornet.SensorKind, now vtime.Time) (float64, bool) {
	return float64(n.ID%17) + float64(uint8(kind))*0.5 + float64(int64(now)/1e9%60)*0.25, true
}
