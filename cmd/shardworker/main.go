// Shardworker hosts remote shard replicas for distributed plan execution:
// a coordinator compiled with Parallelism=P and a node topology
// (core.Config.Nodes / plan.CompileOptions.Nodes) deploys replica subplans
// here over the shard frame protocol (columnar batch bodies, every
// deployment from one coordinator multiplexed over one TCP connection as
// its own stream id), streams hash-partitioned batches and clock ticks
// in, and receives result (or partial-aggregate) rows back — the paper's
// "replicas live on different PCs" deployment model.
//
//	go run ./cmd/shardworker -listen 127.0.0.1:7070
//	go run ./cmd/shardworker                # ephemeral port, printed on stdout
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"aspen/internal/plan"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "address to serve shard replicas on")
	flag.Parse()

	w, err := plan.NewWorker(*listen)
	if err != nil {
		log.Fatal(err)
	}
	// The address line is machine-readable: tests and launch scripts parse
	// it to learn an ephemeral port.
	fmt.Printf("shardworker listening %s\n", w.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
}
