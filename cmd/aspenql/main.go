// Aspenql parses, optimizes and executes StreamSQL statements against a
// simulated SmartCIS deployment, printing the federated plan and the live
// result — the paper's "GUI system interface" for query authoring, as a CLI.
//
//	go run ./cmd/aspenql -q "SELECT t.room, avg(t.value) FROM Temperature t GROUP BY t.room"
//	go run ./cmd/aspenql -plan -q "SELECT t.room, t.value FROM Temperature t, Light l WHERE t.room = l.room AND t.desk = l.desk AND l.value < 10"
//	echo "CREATE VIEW V AS (SELECT l.room FROM Light l); SELECT v.room FROM V v" | go run ./cmd/aspenql
//
// Elastic administration: statements may be interleaved with backslash
// directives — `\rescale addr1,addr2` live-migrates every deployed sharded
// query onto a new worker topology (empty list heals everything back
// in-process), and `\save` checkpoints all standing queries to the
// -snapshot file. With -snapshot plus -restore, a fresh coordinator
// rehydrates the standing queries recorded in the file and resumes them
// from their last committed checkpoint:
//
//	go run ./cmd/aspenql -par 2 -snapshot coord.snap \
//	  -q "SELECT t.room, avg(t.value) FROM Temperature t GROUP BY t.room; \save"
//	go run ./cmd/aspenql -par 2 -snapshot coord.snap -restore
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"aspen"
)

func main() {
	query := flag.String("q", "", "StreamSQL statement (default: read ;-separated statements from stdin)")
	labs := flag.Int("labs", 4, "laboratories in the simulated building")
	runFor := flag.Duration("run", 3*time.Second, "virtual time to run before snapshotting")
	planOnly := flag.Bool("plan", false, "show the federated plan without executing")
	occupy := flag.String("occupy", "L101:1,L102:3", "comma-separated room:desk pairs to occupy")
	par := flag.Int("par", 1, "shard deployed stream plans across this many pipeline replicas")
	nodes := flag.String("nodes", "", "comma-separated shardworker addresses to spread replicas over (see cmd/shardworker; empty entries stay in-process; requires -par >= 2)")
	failover := flag.Bool("failover", false, "redeploy the shards of a dead or stalled worker from their last checkpoint onto a surviving worker (or in-process), keeping results exact across the loss (requires -nodes)")
	snapshot := flag.String("snapshot", "", "durable coordinator: track standing queries in this snapshot file (written by the \\save directive, read by -restore)")
	restore := flag.Bool("restore", false, "rehydrate the standing queries recorded in the -snapshot file and resume them from their last committed checkpoint before running any statements")
	flag.Parse()

	var topo []string
	if *nodes != "" {
		for _, n := range strings.Split(*nodes, ",") {
			topo = append(topo, strings.TrimSpace(n))
		}
		if *par < 2 {
			log.Fatalf("-nodes names %d shard workers but -par is %d; replicas only distribute with -par >= 2",
				len(topo), *par)
		}
	}
	if *failover && len(topo) == 0 {
		log.Fatal("-failover needs a -nodes worker topology to fail over from")
	}
	if *restore && *snapshot == "" {
		log.Fatal("-restore needs a -snapshot file to restore from")
	}
	app, err := aspen.NewSmartCIS(aspen.SmartCISOptions{
		Building:       aspen.BuildingConfig{Labs: *labs, DesksPerLab: 6, HallSpacing: 100, Offices: 2},
		SkipPDUServers: false,
		Parallelism:    *par,
		Nodes:          topo,
		Failover:       *failover,
		SnapshotPath:   *snapshot,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer app.Close()
	app.Start()
	for _, pair := range strings.Split(*occupy, ",") {
		var room string
		var desk int
		if _, err := fmt.Sscanf(strings.TrimSpace(pair), "%3s:%d", &room, &desk); err == nil {
			// rooms are longer than 3 chars; re-split manually
		}
		bits := strings.SplitN(strings.TrimSpace(pair), ":", 2)
		if len(bits) == 2 {
			fmt.Sscanf(bits[1], "%d", &desk)
			room = bits[0]
			app.SetDeskOccupied(room, desk, true)
		}
	}

	var statements []string
	if *query != "" {
		for _, s := range strings.Split(*query, ";") {
			if strings.TrimSpace(s) != "" {
				statements = append(statements, s)
			}
		}
	} else {
		sc := bufio.NewScanner(os.Stdin)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		var all strings.Builder
		for sc.Scan() {
			all.WriteString(sc.Text())
			all.WriteByte('\n')
		}
		for _, s := range strings.Split(all.String(), ";") {
			if strings.TrimSpace(s) != "" {
				statements = append(statements, s)
			}
		}
	}
	if len(statements) == 0 && !*restore {
		fmt.Fprintln(os.Stderr, "no statements; use -q, pipe SQL on stdin, or -restore a snapshot")
		os.Exit(2)
	}

	showResult := func(q *aspen.Query) {
		rows, err := q.Snapshot()
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("result after %s of building time (%d rows):\n", *runFor, len(rows))
		for i, r := range rows {
			if i == 20 {
				fmt.Printf("  ... %d more\n", len(rows)-20)
				break
			}
			cells := make([]string, len(r.Vals))
			for j, v := range r.Vals {
				cells[j] = v.String()
			}
			fmt.Printf("  %s\n", strings.Join(cells, " | "))
		}
		fmt.Println()
	}

	if *restore {
		qs, skipped, err := app.RestoreSnapshot()
		if err != nil {
			log.Fatalf("restore: %v", err)
		}
		fmt.Printf("restored %d standing queries from %s\n", len(qs), *snapshot)
		if len(skipped) > 0 {
			fmt.Fprintf(os.Stderr, "warning: snapshot skipped %s at save time; re-run those queries\n",
				strings.Join(skipped, ", "))
		}
		app.Sched.RunFor(*runFor)
		for _, q := range qs {
			fmt.Printf("aspenql> [%s] %s\n", q.Name(), strings.Join(strings.Fields(q.SQL), " "))
			showResult(q)
		}
	}

	for _, stmt := range statements {
		fmt.Printf("aspenql> %s\n", strings.Join(strings.Fields(stmt), " "))
		if cmd := strings.TrimSpace(stmt); strings.HasPrefix(cmd, `\`) {
			if err := adminDirective(app, cmd); err != nil {
				fmt.Fprintf(os.Stderr, "error: %v\n", err)
				os.Exit(1)
			}
			continue
		}
		q, err := app.RT.Run(stmt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		if q.Partition != nil {
			fmt.Printf("plan: %s\n", q.Partition.Chosen.Desc)
			fmt.Printf("      stream plan: %s\n", q.Partition.Chosen.StreamPlan)
			for _, alt := range q.Partition.Alternatives {
				marker := "   "
				if alt == q.Partition.Chosen {
					marker = "-->"
				}
				fmt.Printf("  %s %-55s unified %.4f (radio %.1f msg/s, stream %.0f work/s)\n",
					marker, alt.Desc, alt.Unified, alt.MsgsPerSec, alt.StreamWork)
			}
		}
		if *planOnly || q.Deployment == nil {
			continue
		}
		app.Sched.RunFor(*runFor)
		showResult(q)
	}
}

// adminDirective executes one backslash admin command against the running
// deployment: \rescale addr1,addr2 live-migrates every sharded query
// (empty list heals everything back in-process), \save checkpoints all
// standing queries to the -snapshot file.
func adminDirective(app *aspen.SmartCIS, cmd string) error {
	verb, rest, _ := strings.Cut(cmd, " ")
	switch verb {
	case `\rescale`:
		var nodes []string
		if rest = strings.TrimSpace(rest); rest != "" {
			for _, n := range strings.Split(rest, ",") {
				nodes = append(nodes, strings.TrimSpace(n))
			}
		}
		if err := app.Rescale(nodes); err != nil {
			return err
		}
		if len(nodes) == 0 {
			fmt.Println("rescaled: all shards in-process")
		} else {
			fmt.Printf("rescaled onto %s\n", strings.Join(nodes, ", "))
		}
		return nil
	case `\save`:
		skipped, err := app.SaveSnapshot()
		if err != nil {
			return err
		}
		if len(skipped) > 0 {
			fmt.Fprintf(os.Stderr, "warning: snapshot does not capture %s\n", strings.Join(skipped, ", "))
		}
		fmt.Println("snapshot saved")
		return nil
	}
	return fmt.Errorf("unknown directive %q (have \\rescale, \\save)", verb)
}
