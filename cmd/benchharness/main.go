// Benchharness regenerates every experiment table (E1–E12) defined in
// DESIGN.md and recorded in EXPERIMENTS.md.
//
//	go run ./cmd/benchharness                       # all experiments
//	go run ./cmd/benchharness E2 E4                 # a subset
//	go run ./cmd/benchharness -json BENCH_PR8.json  # machine-readable dump
//
// With -json, the selected experiment tables are also written to the given
// file together with the recorded seed baselines of the hot-path
// microbenchmarks (see PERF.md), so before/after comparisons ride along
// with the data.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"aspen/internal/experiments"
)

// seedBaselines records the microbenchmark numbers of the seed tree
// (before PR 1's allocation-free hot path), measured with
// `go test -run '^$' -bench <id> -benchmem`. PERF.md documents the
// workflow and the matching post-PR numbers.
var seedBaselines = map[string]string{
	"E7StreamThroughput":  "662 ns/op, 287 B/op, 8 allocs/op",
	"E2InNetworkJoin/opt": "39287 ns/op, 42272 B/op, 216 allocs/op",
	"E9EndToEnd":          "335236 ns/op, 162985 B/op, 1078 allocs/op",
}

// pr1Baselines records the post-PR-1 numbers (allocation-free hot path,
// from BENCH_PR1.json's era) that the PR-2 serial-regression criteria are
// measured against; the sharded E7 sweep rides in the E7 table itself.
var pr1Baselines = map[string]string{
	"E7StreamThroughput":      "261 ns/op, 1 allocs/op",
	"E7StreamThroughputBatch": "253 ns/op, 0 allocs/op",
	"E2InNetworkJoin/opt":     "24049 ns/op, 26 allocs/op",
	"E9EndToEnd":              "293379 ns/op, 977 allocs/op",
}

// pr2Baselines records the post-PR-2 shard-sweep numbers (single-core CI
// container) that PR 3's two-phase additions must not regress against; the
// global-aggregate sweep rides in the E7 table (`10s/glob/P=n` rows) and
// in BenchmarkE7GlobalAggSharded.
var pr2Baselines = map[string]string{
	"E7StreamThroughputSharded/P=1": "244 ns/op, 0 allocs/op",
	"E7StreamThroughputSharded/P=2": "259 ns/op, 0 allocs/op",
	"E7StreamThroughputSharded/P=4": "287 ns/op, 0 allocs/op",
	"E7StreamThroughputSharded/P=8": "392 ns/op, 0 allocs/op",
}

// pr3Baselines records the post-PR-3 sweep numbers (single-core CI
// container) that PR 4's multi-node exchange must not regress against; the
// loopback-worker sweep rides in the E7 table (`10s/P=4/W=n` rows) and in
// BenchmarkE7RemoteSharded.
var pr3Baselines = map[string]string{
	"E7StreamThroughputSharded/P=1": "217 ns/op, 0 allocs/op",
	"E7StreamThroughputSharded/P=2": "243 ns/op, 0 allocs/op",
	"E7StreamThroughputSharded/P=4": "286 ns/op, 0 allocs/op",
	"E7StreamThroughputSharded/P=8": "394 ns/op, 0 allocs/op",
	"E7GlobalAggSharded/P=1":        "228 ns/op, 0 allocs/op",
	"E7GlobalAggSharded/P=2":        "245 ns/op, 0 allocs/op",
	"E7GlobalAggSharded/P=4":        "290 ns/op, 0 allocs/op",
	"E7GlobalAggSharded/P=8":        "407 ns/op, 0 allocs/op",
}

// pr4Baselines records the post-PR-4 numbers (single-core CI container)
// that PR 5's failover subsystem must not regress against: the in-process
// sweeps must not pay for the failover machinery at all (it only hooks
// worker connections), and the remote rows bound the replay-log +
// checkpoint overhead on the wire path.
var pr4Baselines = map[string]string{
	"E7StreamThroughputSharded/P=1": "259 ns/op, 0 allocs/op",
	"E7StreamThroughputSharded/P=2": "270 ns/op, 0 allocs/op",
	"E7StreamThroughputSharded/P=4": "294 ns/op, 0 allocs/op",
	"E7StreamThroughputSharded/P=8": "390 ns/op, 0 allocs/op",
	"E7RemoteSharded/W=0":           "284 ns/op, 0 allocs/op",
	"E7RemoteSharded/W=1":           "2012 ns/op, 4 allocs/op",
	"E7RemoteSharded/W=2":           "1955 ns/op, 4 allocs/op",
}

// pr5Baselines records the post-PR-5 numbers (single-core CI container,
// gob wire codec, one TCP connection per deployment×worker) that PR 6's
// columnar codec + connection multiplexing are measured against: the
// W>=1 rows are the wire path the codec had to make ~10× cheaper.
var pr5Baselines = map[string]string{
	"E7RemoteSharded/W=0":         "321 ns/op, 0 allocs/op",
	"E7RemoteSharded/W=1":         "2437 ns/op, 4 allocs/op",
	"E7RemoteShardedFailover/W=0": "330 ns/op, 0 allocs/op",
	"E7RemoteShardedFailover/W=1": "2615 ns/op, 4 allocs/op",
}

// pr6Baselines records the post-PR-6 numbers (single-core CI container,
// columnar wire codec, multiplexed connections) that PR 7's elastic
// membership is measured against: armed-but-idle rescale support must
// keep the in-process sweeps at 0 allocs/op and stay within 5% on the
// W=1 wire path.
var pr6Baselines = map[string]string{
	"E7StreamThroughputSharded/P=1": "214 ns/op, 0 allocs/op",
	"E7StreamThroughputSharded/P=2": "257 ns/op, 0 allocs/op",
	"E7StreamThroughputSharded/P=4": "285 ns/op, 0 allocs/op",
	"E7StreamThroughputSharded/P=8": "362 ns/op, 0 allocs/op",
	"E7RemoteSharded/W=0":           "285 ns/op, 0 allocs/op",
	"E7RemoteSharded/W=1":           "422 ns/op, 0 allocs/op",
	"E7RemoteSharded/W=2":           "364 ns/op, 0 allocs/op",
	"E7RemoteShardedFailover/W=0":   "298 ns/op, 0 allocs/op",
	"E7RemoteShardedFailover/W=1":   "621 ns/op, 0 allocs/op",
}

// pr7Baselines records the post-PR-7 query-density numbers (single-core CI
// container, Q private windowed-filter pipelines per query — the only
// deployment mode before PR 8's shared-subplan layer). ns/op is per tuple
// across all Q queries, so the linear growth in Q is the cost PR 8's
// prefix sharing has to flatten; the matching shared rows ride in the E11
// table and in BenchmarkQueryDensity.
var pr7Baselines = map[string]string{
	"QueryDensity/Q=1/private":   "253 ns/op",
	"QueryDensity/Q=16/private":  "3988 ns/op",
	"QueryDensity/Q=256/private": "84824 ns/op",
}

// pr9Baselines records the post-PR-9 numbers (single-core CI container,
// from BENCH_PR9.json's E7/E11/E2R tables) that PR 10's armed snapshot
// support is measured against: capturing shared-chain windows and
// fragment specs in coordinator snapshots is off the hot path, so the
// shard/wire sweeps and the shared-prefix per-query costs must hold
// unchanged (0 allocs/op in the matching microbenchmarks).
var pr9Baselines = map[string]string{
	"E7/10s/P=4":        "7.7 ms wall, 3.88M tuples/sec",
	"E7/10s/P=4/W=1":    "10.0 ms wall, 3.01M tuples/sec",
	"E7/10s/P=4/W=1/fo": "16.6 ms wall, 1.80M tuples/sec",
	"E11/Q=16/shared":   "96 ns/tuple/query, 3.11x over private",
	"E11/Q=256/shared":  "67 ns/tuple/query, 5.11x over private",
	"E2R/12x12":         "fragment-at-worker 0.95x of raw-over-wire, 0 raw tuples shipped",
}

type report struct {
	// SeedBaseline holds the pre-optimization microbenchmark numbers for
	// the benchmarks the PR-1 acceptance criteria track.
	SeedBaseline map[string]string `json:"seed_baseline"`
	// PR1Baseline holds the post-PR-1 numbers that PR 2's serial paths
	// must not regress against.
	PR1Baseline map[string]string `json:"pr1_baseline"`
	// PR2Baseline holds the post-PR-2 sharded numbers that PR 3's
	// two-phase aggregation must not regress against.
	PR2Baseline map[string]string `json:"pr2_baseline"`
	// PR3Baseline holds the post-PR-3 sweep numbers that PR 4's
	// multi-node exchange must not regress against.
	PR3Baseline map[string]string `json:"pr3_baseline"`
	// PR4Baseline holds the post-PR-4 sweep numbers that PR 5's failover
	// subsystem must not regress against.
	PR4Baseline map[string]string `json:"pr4_baseline"`
	// PR5Baseline holds the post-PR-5 gob-era remote numbers that PR 6's
	// columnar wire codec + multiplexing are compared against.
	PR5Baseline map[string]string `json:"pr5_baseline"`
	// PR6Baseline holds the post-PR-6 numbers that PR 7's elastic
	// membership (always-armed rescale support) is compared against.
	PR6Baseline map[string]string `json:"pr6_baseline"`
	// PR7Baseline holds the post-PR-7 per-query numbers — Q private
	// pipelines, before the shared-subplan layer existed — that PR 8's
	// query-density criterion (per-query cost sublinear in Q) is
	// measured against.
	PR7Baseline map[string]string `json:"pr7_baseline"`
	// PR9Baseline holds the post-PR-9 table numbers (PR 8's rows ride in
	// the frozen BENCH_PR8.json) that PR 10's snapshot v2 capture — shared
	// chains and fragment deployments — must not regress; the snapshot
	// size/latency rows themselves live in the E12 table.
	PR9Baseline map[string]string   `json:"pr9_baseline"`
	Experiments []experiments.Table `json:"experiments"`
}

func main() {
	jsonPath := flag.String("json", "", "also write the tables as JSON to this file")
	flag.Parse()

	all := map[string]func() experiments.Table{
		"E1":  experiments.E1FederatedPartitioning,
		"E2":  experiments.E2InNetworkJoin,
		"E2R": experiments.E2RemoteFragment,
		"E3":  experiments.E3JoinPlacement,
		"E4":  experiments.E4InNetworkAgg,
		"E5":  experiments.E5RouteLatency,
		"E6":  experiments.E6IncrementalView,
		"E7":  experiments.E7StreamThroughput,
		"E8":  experiments.E8CostUnification,
		"E9":  experiments.E9EndToEnd,
		"E10": experiments.E10Alarms,
		"E11": experiments.E11QueryDensity,
		"E12": experiments.E12SnapshotDurability,
	}
	order := []string{"E1", "E2", "E2R", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12"}

	want := flag.Args()
	if len(want) == 0 {
		want = order
	}
	rep := report{SeedBaseline: seedBaselines, PR1Baseline: pr1Baselines,
		PR2Baseline: pr2Baselines, PR3Baseline: pr3Baselines,
		PR4Baseline: pr4Baselines, PR5Baseline: pr5Baselines,
		PR6Baseline: pr6Baselines, PR7Baseline: pr7Baselines,
		PR9Baseline: pr9Baselines}
	for _, id := range want {
		fn, ok := all[strings.ToUpper(id)]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (have %s)\n", id, strings.Join(order, ", "))
			os.Exit(2)
		}
		tbl := fn()
		fmt.Println(tbl.Format())
		rep.Experiments = append(rep.Experiments, tbl)
	}
	if *jsonPath != "" {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		out = append(out, '\n')
		if err := os.WriteFile(*jsonPath, out, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
	}
}
