// Benchharness regenerates every experiment table (E1–E10) defined in
// DESIGN.md and recorded in EXPERIMENTS.md.
//
//	go run ./cmd/benchharness            # all experiments
//	go run ./cmd/benchharness E2 E4      # a subset
package main

import (
	"fmt"
	"os"
	"strings"

	"aspen/internal/experiments"
)

func main() {
	all := map[string]func() experiments.Table{
		"E1":  experiments.E1FederatedPartitioning,
		"E2":  experiments.E2InNetworkJoin,
		"E3":  experiments.E3JoinPlacement,
		"E4":  experiments.E4InNetworkAgg,
		"E5":  experiments.E5RouteLatency,
		"E6":  experiments.E6IncrementalView,
		"E7":  experiments.E7StreamThroughput,
		"E8":  experiments.E8CostUnification,
		"E9":  experiments.E9EndToEnd,
		"E10": experiments.E10Alarms,
	}
	order := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10"}

	want := os.Args[1:]
	if len(want) == 0 {
		want = order
	}
	for _, id := range want {
		fn, ok := all[strings.ToUpper(id)]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (have %s)\n", id, strings.Join(order, ", "))
			os.Exit(2)
		}
		fmt.Println(fn().Format())
	}
}
