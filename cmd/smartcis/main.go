// Smartcis runs the paper's §4 demonstration as an animated terminal
// session: the building map updates as sensing epochs pass, a visitor walks
// the hallway, requests a machine, and the suggested route is plotted —
// with the live federated query plan in the status panel.
//
//	go run ./cmd/smartcis                 # full scenario
//	go run ./cmd/smartcis -labs 6 -frames 8
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"aspen"
)

func main() {
	labs := flag.Int("labs", 4, "laboratories along the hallway")
	desks := flag.Int("desks", 6, "desks per laboratory")
	frames := flag.Int("frames", 6, "scenario frames to render")
	need := flag.String("need", "fedora linux", "software the visitor needs")
	seed := flag.Int64("seed", 2009, "simulation seed")
	snapshot := flag.String("snapshot", "", "save a durable coordinator snapshot of the standing queries to this file when the scenario ends")
	flag.Parse()

	app, err := aspen.NewSmartCIS(aspen.SmartCISOptions{
		Building:     aspen.BuildingConfig{Labs: *labs, DesksPerLab: *desks, HallSpacing: 100, Offices: 2},
		Seed:         *seed,
		SnapshotPath: *snapshot,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer app.Close()
	app.Start()

	occ, err := app.OccupancyQuery()
	if err != nil {
		log.Fatal(err)
	}
	alarms, err := app.AlarmQuery(45)
	if err != nil {
		log.Fatal(err)
	}

	// The repainter coalesces query-result changes into one render per
	// frame: materialized results invalidate it (once per delta batch),
	// scene beats invalidate it explicitly, and an unchanged frame skips
	// the render entirely.
	var opts aspen.GUIOptions
	repaint := aspen.NewRepainter(os.Stdout, func() string {
		return aspen.RenderGUI(app, opts)
	})
	repaint.Watch(occ.Deployment.Result)
	repaint.Watch(alarms.Deployment.Result)

	// Scenario beats, one per frame.
	beats := []struct {
		desc string
		act  func()
	}{
		{"building opens; queries deployed", func() {}},
		{"students sit down in L101 and L102", func() {
			app.SetDeskOccupied("L101", 1, true)
			app.SetDeskOccupied("L102", 2, true)
		}},
		{"L103 closes for the evening", func() { app.SetRoomLights("L103", false) }},
		{"a visitor arrives at the lobby", func() { app.VisitorArrives("visitor") }},
		{"the visitor walks to hall2", func() { _ = app.MoveVisitorTo("visitor", "hall2") }},
		{"a server room overheats", func() { app.SetRoomTemp("MR1", 55) }},
	}

	var guide *aspen.Guidance
	for f := 0; f < *frames; f++ {
		if f < len(beats) {
			beats[f].act()
			repaint.Invalidate()
		}
		app.Sched.RunFor(2 * time.Second)

		// once the visitor is in the building, keep guidance fresh
		if f >= 4 {
			if g, err := app.Guide("visitor", *need); err == nil {
				guide = g
			}
		}

		status := aspen.StatusPanel(app, map[string]string{
			"occupancy plan": occ.Partition.Chosen.Desc,
		})
		if f < len(beats) {
			status = append(status, "scene: "+beats[f].desc)
		}
		if guide != nil {
			status = append(status, fmt.Sprintf("guidance: %s via %s", guide.Machine.Name, guide.Route))
		}
		if arows, err := alarms.Snapshot(); err == nil && len(arows) > 0 {
			status = append(status, fmt.Sprintf("ALARM: %d hot readings (first: %s %.1f°C)",
				len(arows), arows[0].Vals[0].AsString(), arows[0].Vals[2].AsFloat()))
		}

		opts = aspen.GUIOptions{Visitor: "visitor", Status: status}
		if guide != nil {
			opts.Route = &guide.Route
		}
		fmt.Printf("frame %d/%d (t=%s)\n", f+1, *frames, app.Sched.Now())
		if !repaint.Paint() {
			fmt.Println("(no query or scene change; frame skipped)")
		}
		fmt.Println()
	}

	rows, err := occ.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final occupancy result (%d rows); radio: %d msgs, %.1f mJ\n",
		len(rows), app.Net.Metrics().Sent, app.Net.Metrics().EnergyMJ)
	if *snapshot != "" {
		skipped, err := app.SaveSnapshot()
		if err != nil {
			log.Fatalf("snapshot: %v", err)
		}
		if len(skipped) > 0 {
			fmt.Printf("warning: snapshot does not capture %s\n", strings.Join(skipped, ", "))
		}
		fmt.Printf("coordinator snapshot saved to %s\n", *snapshot)
	}
}
