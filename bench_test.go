// Benchmarks: one per experiment E1–E11 (see DESIGN.md §3 and
// EXPERIMENTS.md). Each benchmark exercises the experiment's inner
// operation; cmd/benchharness regenerates the full parameter-sweep tables.
package aspen_test

import (
	"fmt"
	"testing"
	"time"

	"aspen/internal/building"
	"aspen/internal/catalog"
	"aspen/internal/data"
	"aspen/internal/experiments"
	"aspen/internal/expr"
	"aspen/internal/federation"
	"aspen/internal/sensor"
	"aspen/internal/sensornet"
	"aspen/internal/smartcis"
	"aspen/internal/sql"
	"aspen/internal/stream"
	"aspen/internal/views"
	"aspen/internal/vtime"
)

func benchEnv(dark map[int]bool) sensor.Env {
	return sensor.EnvFunc(func(n sensornet.Node, kind sensornet.SensorKind, _ vtime.Time) (float64, bool) {
		switch kind {
		case sensornet.SensorTemperature:
			return 20 + float64(n.ID%17), true
		case sensornet.SensorLight:
			if dark[n.ID] {
				return 4, true
			}
			return 70, true
		}
		return 0, false
	})
}

func benchJoinState(b *testing.B, e *sensor.Engine, p sensor.Placement) *sensor.JoinState {
	b.Helper()
	q := &sensor.JoinQuery{
		Left:      sensor.JoinSide{Rel: "t", Sensor: sensornet.SensorTemperature},
		Right:     sensor.JoinSide{Rel: "l", Sensor: sensornet.SensorLight},
		PairBy:    sensor.PairSameDesk,
		Placement: p,
	}
	q.Right.Pred = expr.MustBind(
		expr.Bin{Op: expr.OpLt, L: expr.C("value"), R: expr.L(10.0)},
		sensor.ReadingSchema("l"))
	st, err := e.PlanJoin(q)
	if err != nil {
		b.Fatal(err)
	}
	return st
}

// BenchmarkE1FederatedPartitioning measures one full federated optimization
// of the Fig. 1 query: partition enumeration, capability checks, per-engine
// costing, unification.
func BenchmarkE1FederatedPartitioning(b *testing.B) {
	app, err := smartcis.New(smartcis.Options{
		Building:       building.GenConfig{Labs: 4, DesksPerLab: 6, HallSpacing: 100, Offices: 2},
		SkipPDUServers: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer app.Close()
	stmt, err := sql.ParseSelect(`SELECT t.room, t.desk, m.name
		FROM Temperature t [RANGE 2 SECONDS], Light l, Machines m
		WHERE t.room = l.room AND t.desk = l.desk AND l.value < 10
		AND m.room = t.room AND m.desk = t.desk`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := app.RT.Federator().Optimize(stmt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2InNetworkJoin measures one epoch of the occupancy join under
// both placements on an 8x8 grid.
func BenchmarkE2InNetworkJoin(b *testing.B) {
	for _, mode := range []sensor.Placement{sensor.PlaceOptimized, sensor.PlaceAtBase} {
		b.Run(mode.String(), func(b *testing.B) {
			nw := sensornet.Grid(sensornet.DefaultConfig(), 8, 8, 100, 8,
				sensornet.SensorTemperature, sensornet.SensorLight)
			e := sensor.NewEngine(nw, benchEnv(map[int]bool{3: true, 17: true}))
			st := benchJoinState(b, e, mode)
			sink := func(data.Tuple) {}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.RunJoinEpoch(st, vtime.Time(i), sink)
			}
			b.ReportMetric(float64(nw.Metrics().Sent)/float64(b.N), "msgs/epoch")
		})
	}
}

// BenchmarkE3JoinPlacement measures the placement decision itself: cost
// evaluation across converged statistics.
func BenchmarkE3JoinPlacement(b *testing.B) {
	nw := sensornet.Grid(sensornet.DefaultConfig(), 8, 8, 100, 8,
		sensornet.SensorTemperature, sensornet.SensorLight)
	e := sensor.NewEngine(nw, benchEnv(map[int]bool{3: true}))
	st := benchJoinState(b, e, sensor.PlaceOptimized)
	for ep := 0; ep < 20; ep++ {
		e.RunJoinEpoch(st, vtime.Time(ep), func(data.Tuple) {})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.EstimateJoin(st); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE4InNetworkAgg measures one aggregation epoch, TAG vs
// centralized, on a 10x10 grid.
func BenchmarkE4InNetworkAgg(b *testing.B) {
	for _, mode := range []struct {
		name string
		m    sensor.AggMode
	}{{"tag", sensor.AggInNetwork}, {"central", sensor.AggCentralized}} {
		b.Run(mode.name, func(b *testing.B) {
			nw := sensornet.Grid(sensornet.DefaultConfig(), 10, 10, 100, 10,
				sensornet.SensorTemperature)
			e := sensor.NewEngine(nw, benchEnv(nil))
			q := &sensor.AggregateQuery{Rel: "t", Sensor: sensornet.SensorTemperature,
				Func: sensor.AggAvg, Mode: mode.m}
			sink := func(data.Tuple) {}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.RunAggregateEpoch(q, vtime.Time(i), sink)
			}
			b.ReportMetric(float64(nw.Metrics().Sent)/float64(b.N), "msgs/epoch")
		})
	}
}

// BenchmarkE5RouteLatency measures one guidance route computation on a
// large building.
func BenchmarkE5RouteLatency(b *testing.B) {
	bld := building.Generate(building.GenConfig{Labs: 48, DesksPerLab: 4, HallSpacing: 100, Offices: 24})
	g := bld.Graph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := g.Shortest("lobby", "L148"); !ok {
			b.Fatal("unreachable")
		}
	}
}

// BenchmarkE6IncrementalView measures one incremental edge delete+insert on
// a maintained transitive closure, against full recomputation.
func BenchmarkE6IncrementalView(b *testing.B) {
	mkView := func() (*views.View, func(a, c string, del bool)) {
		vs := data.NewSchema("p", data.Col("src", data.TString), data.Col("dst", data.TString))
		es := data.NewSchema("e", data.Col("src", data.TString), data.Col("dst", data.TString))
		v, err := views.New(views.Config{
			Schema: vs, EdgeSchema: es,
			ViewKey: []string{"p.dst"}, EdgeKey: []string{"e.src"},
			Project: []stream.ProjectItem{{Expr: expr.C("p.src")}, {Expr: expr.C("e.dst")}},
		}, stream.NewCallback(vs, func(data.Tuple) {}))
		if err != nil {
			b.Fatal(err)
		}
		feed := func(a, c string, del bool) {
			t := data.NewTuple(0, data.Str(a), data.Str(c))
			if del {
				t = t.Negate()
			}
			v.BaseInput().Push(t)
			v.EdgeInput().Push(t)
		}
		return v, feed
	}
	load := func(feed func(a, c string, del bool)) {
		for i := 0; i+1 < 30; i++ {
			feed(fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", i+1), false)
		}
	}
	b.Run("incremental", func(b *testing.B) {
		_, feed := mkView()
		load(feed)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			feed("n27", "n28", true)
			feed("n27", "n28", false)
		}
	})
	b.Run("recompute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, feed := mkView()
			load(feed)
		}
	})
}

// BenchmarkE7StreamThroughput measures per-tuple cost of the windowed
// join + aggregation pipeline.
func BenchmarkE7StreamThroughput(b *testing.B) {
	left := data.NewSchema("a", data.Col("k", data.TInt), data.Col("v", data.TFloat))
	right := data.NewSchema("bb", data.Col("k", data.TInt), data.Col("w", data.TFloat))
	joined := left.Concat(right)
	out, err := stream.AggOutSchema(joined, []string{"a.k"},
		[]stream.AggSpec{{Kind: stream.AggAvg, Arg: expr.C("v"), Alias: "m"}})
	if err != nil {
		b.Fatal(err)
	}
	mat := stream.NewMaterialize(out)
	agg, err := stream.NewAggregate(mat, joined, []string{"a.k"},
		[]stream.AggSpec{{Kind: stream.AggAvg, Arg: expr.C("v"), Alias: "m"}}, nil)
	if err != nil {
		b.Fatal(err)
	}
	j, err := stream.NewJoin(agg, left, right, []string{"a.k"}, []string{"bb.k"}, nil)
	if err != nil {
		b.Fatal(err)
	}
	wl := stream.NewTimeWindow(j.Left(), 10*time.Second, 0)
	wr := stream.NewTimeWindow(j.Right(), 10*time.Second, 0)
	b.ResetTimer()
	ts := vtime.Time(0)
	for i := 0; i < b.N; i++ {
		ts += vtime.Time(50 * time.Millisecond)
		k := data.Int(int64(i % 64))
		if i%2 == 0 {
			wl.Push(data.Tuple{Vals: []data.Value{k, data.Float(float64(i))}, TS: ts})
		} else {
			wr.Push(data.Tuple{Vals: []data.Value{k, data.Float(float64(i))}, TS: ts})
		}
	}
}

// BenchmarkE7StreamThroughputBatch is E7 driven through the batch
// propagation API: tuples arrive in epochs of 64 via PushBatch, letting
// windows and sinks amortize downstream dispatch.
func BenchmarkE7StreamThroughputBatch(b *testing.B) {
	left := data.NewSchema("a", data.Col("k", data.TInt), data.Col("v", data.TFloat))
	right := data.NewSchema("bb", data.Col("k", data.TInt), data.Col("w", data.TFloat))
	joined := left.Concat(right)
	out, err := stream.AggOutSchema(joined, []string{"a.k"},
		[]stream.AggSpec{{Kind: stream.AggAvg, Arg: expr.C("v"), Alias: "m"}})
	if err != nil {
		b.Fatal(err)
	}
	mat := stream.NewMaterialize(out)
	agg, err := stream.NewAggregate(mat, joined, []string{"a.k"},
		[]stream.AggSpec{{Kind: stream.AggAvg, Arg: expr.C("v"), Alias: "m"}}, nil)
	if err != nil {
		b.Fatal(err)
	}
	j, err := stream.NewJoin(agg, left, right, []string{"a.k"}, []string{"bb.k"}, nil)
	if err != nil {
		b.Fatal(err)
	}
	wl := stream.NewTimeWindow(j.Left(), 10*time.Second, 0)
	wr := stream.NewTimeWindow(j.Right(), 10*time.Second, 0)
	const epoch = 64
	lb := make([]data.Tuple, 0, epoch/2)
	rb := make([]data.Tuple, 0, epoch/2)
	b.ResetTimer()
	ts := vtime.Time(0)
	for i := 0; i < b.N; i += epoch {
		lb, rb = lb[:0], rb[:0]
		// One backing array per epoch: windows retain pushed tuples, so the
		// source must not reuse Vals it already pushed.
		vals := make([]data.Value, 2*epoch)
		for k := 0; k < epoch; k++ {
			ts += vtime.Time(50 * time.Millisecond)
			v := vals[2*k : 2*k+2 : 2*k+2]
			v[0] = data.Int(int64((i + k) % 64))
			v[1] = data.Float(float64(i + k))
			t := data.Tuple{Vals: v, TS: ts}
			if k%2 == 0 {
				lb = append(lb, t)
			} else {
				rb = append(rb, t)
			}
		}
		stream.PushBatch(wl, lb)
		stream.PushBatch(wr, rb)
	}
}

// BenchmarkE7StreamThroughputSharded is E7 through the partition-parallel
// layer: P replicas of the window→join→agg pipeline behind Sharders keyed
// on k, merged into one shared Materialize (the exact harness pipeline,
// experiments.NewShardedE7). Tuples arrive in epochs of 64 via PushBatch
// like the Batch variant; the serial comparison point is
// BenchmarkE7StreamThroughputBatch. Throughput scales with cores (P=1
// measures pure exchange overhead on any machine).
func BenchmarkE7StreamThroughputSharded(b *testing.B) {
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			e := experiments.NewShardedE7(10*time.Second, p)
			defer e.Set.Close()
			b.ResetTimer()
			ts := vtime.Time(0)
			for i := 0; i < b.N; i += 64 {
				ts = e.FeedEpoch(i, ts)
			}
			e.Set.Flush()
		})
	}
}

// BenchmarkE7GlobalAggSharded is E7 with the grouped aggregate replaced by
// a global AVG (no GROUP BY): each replica runs window→join→
// PartialAggregate and a single serial FinalMerge behind the Merge funnel
// combines the per-shard partial states — the two-phase path that lets
// building-wide rollups shard at all (PR 2 ran them serial). Every join
// result updates the one global group, so this also stresses the
// partial-emit path far harder than the grouped benchmark.
func BenchmarkE7GlobalAggSharded(b *testing.B) {
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			e := experiments.NewShardedE7Global(10*time.Second, p)
			defer e.Set.Close()
			b.ResetTimer()
			ts := vtime.Time(0)
			for i := 0; i < b.N; i += 64 {
				ts = e.FeedEpoch(i, ts)
			}
			e.Set.Flush()
		})
	}
}

// BenchmarkE7RemoteSharded is the multi-node E7: the same compiled plan at
// P=4 with its shard replicas round-robined over W loopback shard workers
// (W=0 keeps every replica in-process — the same-harness baseline). The
// delta against W=0 is the cost of routing the exchange, ticks, and the
// result funnel over gob/TCP instead of in-process queues.
func BenchmarkE7RemoteSharded(b *testing.B) {
	for _, w := range []int{0, 1, 2} {
		b.Run(fmt.Sprintf("W=%d", w), func(b *testing.B) {
			e, err := experiments.NewRemoteE7(10*time.Second, 4, w)
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			b.ResetTimer()
			ts := vtime.Time(0)
			for i := 0; i < b.N; i += 64 {
				ts = e.FeedEpoch(i, ts)
			}
			e.Dep.Flush()
		})
	}
}

// BenchmarkE7RemoteShardedFailover is BenchmarkE7RemoteSharded with
// checkpointed worker failover armed: W=0 shows that an armed deployment
// with no remote replica costs nothing (the failover machinery only hooks
// worker connections), W=1 adds the coordinator-side replay log and the
// periodic checkpoint barriers to the gob/TCP exchange path.
func BenchmarkE7RemoteShardedFailover(b *testing.B) {
	for _, w := range []int{0, 1} {
		b.Run(fmt.Sprintf("W=%d", w), func(b *testing.B) {
			e, err := experiments.NewRemoteE7Failover(10*time.Second, 4, w, true)
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			b.ResetTimer()
			ts := vtime.Time(0)
			for i := 0; i < b.N; i += 64 {
				ts = e.FeedEpoch(i, ts)
			}
			e.Dep.Flush()
		})
	}
}

// BenchmarkQueryDensity is E11: per-tuple cost of Q standing queries —
// selective windowed filters with heavily overlapping plans — over one
// source, deployed privately (Q independent window+filter pipelines) vs
// through one shared-prefix registry (one window, four predicate layers,
// fan-out only at divergence points). ns/op is per tuple across ALL Q
// queries: private grows linearly in Q, shared stays near-flat.
func BenchmarkQueryDensity(b *testing.B) {
	for _, q := range []int{1, 16, 256} {
		for _, shared := range []bool{false, true} {
			mode := "private"
			if shared {
				mode = "shared"
			}
			b.Run(fmt.Sprintf("Q=%d/%s", q, mode), func(b *testing.B) {
				qd := experiments.NewQueryDensity(q, shared)
				defer qd.Close()
				b.ResetTimer()
				ts := vtime.Time(0)
				for i := 0; i < b.N; i++ {
					ts = qd.Feed(i, ts)
				}
			})
		}
	}
}

// BenchmarkE8CostUnification measures one optimization under modified
// radio statistics (the cost-conversion path).
func BenchmarkE8CostUnification(b *testing.B) {
	nw := sensornet.Grid(sensornet.DefaultConfig(), 6, 6, 100, 6,
		sensornet.SensorTemperature, sensornet.SensorLight)
	eng := sensor.NewEngine(nw, benchEnv(map[int]bool{7: true}))
	cat := catalog.New()
	st := cat.Stats()
	st.RadioMsgLatency = 200 * time.Millisecond
	cat.SetStats(st)
	for _, name := range []string{"Temperature", "Light"} {
		cat.MustAddSource(&catalog.Source{Name: name, Kind: catalog.KindSensorStream,
			Schema: sensor.ReadingSchema(name), Rate: 36})
	}
	fed := &federation.Federator{Cat: cat, Sensors: &federation.Binding{
		Kinds: map[string]sensornet.SensorKind{
			"temperature": sensornet.SensorTemperature,
			"light":       sensornet.SensorLight,
		},
		Engine: eng,
	}}
	stmt, err := sql.ParseSelect(`SELECT t.room, t.value FROM Temperature t, Light l
		WHERE t.room = l.room AND t.desk = l.desk AND l.value < 10`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fed.Optimize(stmt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9EndToEnd measures one full virtual second of the running
// SmartCIS deployment: sensing epochs, engine ticks, query maintenance.
func BenchmarkE9EndToEnd(b *testing.B) {
	app, err := smartcis.New(smartcis.Options{
		Building:       building.GenConfig{Labs: 4, DesksPerLab: 6, HallSpacing: 100, Offices: 2},
		SkipPDUServers: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer app.Close()
	if _, err := app.OccupancyQuery(); err != nil {
		b.Fatal(err)
	}
	app.SetDeskOccupied("L101", 1, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		app.Sched.RunFor(time.Second)
	}
	b.ReportMetric(float64(app.Net.Metrics().Sent)/float64(b.N), "msgs/vsec")
}

// BenchmarkE10Alarms measures one sensing epoch with an active alarm query
// and a per-user aggregation.
func BenchmarkE10Alarms(b *testing.B) {
	app, err := smartcis.New(smartcis.Options{
		Building:       building.GenConfig{Labs: 3, DesksPerLab: 4, HallSpacing: 100},
		SkipPDUServers: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer app.Close()
	if _, err := app.AlarmQuery(45); err != nil {
		b.Fatal(err)
	}
	if _, err := app.ResourcesByUser(); err != nil {
		b.Fatal(err)
	}
	app.SetRoomTemp("L102", 55)
	app.Fleet.StartJob("ws-L101-1", "marie", "sim", 0.5, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		app.SampleJobsNow()
		app.Sched.RunFor(time.Second)
	}
}
