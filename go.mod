module aspen

go 1.24
