package aspen_test

import (
	"strings"
	"testing"

	"aspen"
)

// TestFacadeQuickstart exercises the bare-runtime path of the public API.
func TestFacadeQuickstart(t *testing.T) {
	sched := aspen.NewScheduler()
	rt := aspen.NewRuntime(aspen.RuntimeConfig{Scheduler: sched})
	defer rt.Close()

	temps := aspen.NewStreamSchema("Temps",
		aspen.Col("room", aspen.TString), aspen.Col("deg", aspen.TFloat))
	in, err := rt.RegisterStream("Temps", temps, 10)
	if err != nil {
		t.Fatal(err)
	}
	q, err := rt.Run(`SELECT t.room, avg(t.deg) AS a FROM Temps t [ROWS 100] GROUP BY t.room`)
	if err != nil {
		t.Fatal(err)
	}
	in.Push(aspen.NewTuple(1, aspen.Str("L1"), aspen.Float(20)))
	in.Push(aspen.NewTuple(2, aspen.Str("L1"), aspen.Float(30)))
	rows, err := q.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Vals[1].AsFloat() != 25 {
		t.Fatalf("rows = %v", rows)
	}
}

// TestFacadeSmartCIS exercises the demo path of the public API.
func TestFacadeSmartCIS(t *testing.T) {
	app, err := aspen.NewSmartCIS(aspen.SmartCISOptions{
		Building:       aspen.BuildingConfig{Labs: 2, DesksPerLab: 2, HallSpacing: 100},
		SkipPDUServers: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()

	app.VisitorArrives("bob")
	g, err := app.Guide("bob", "fedora linux")
	if err != nil {
		t.Fatal(err)
	}
	frame := aspen.RenderGUI(app, aspen.GUIOptions{
		Route: &g.Route, Visitor: "bob",
		Status: aspen.StatusPanel(app, map[string]string{"demo": "ok"}),
	})
	if !strings.Contains(frame, "@") || !strings.Contains(frame, "demo: ok") {
		t.Fatalf("frame = %s", frame)
	}
	if aspen.DefaultBuilding().Labs != 4 {
		t.Fatal("default building")
	}
}

// TestFacadeTables covers Relation round trips through the facade.
func TestFacadeTables(t *testing.T) {
	rt := aspen.NewRuntime(aspen.RuntimeConfig{})
	defer rt.Close()
	s := aspen.NewSchema("Rooms", aspen.Col("name", aspen.TString), aspen.Col("floor", aspen.TInt))
	rel := aspen.NewRelation(s)
	rel.MustInsert(aspen.Str("L101"), aspen.Int(1))
	rel.MustInsert(aspen.Str("L201"), aspen.Int(2))
	if err := rt.RegisterTable("Rooms", rel); err != nil {
		t.Fatal(err)
	}
	q, err := rt.Run(`SELECT r.name FROM Rooms r WHERE r.floor = 2`)
	if err != nil {
		t.Fatal(err)
	}
	rows, _ := q.Snapshot()
	if len(rows) != 1 || rows[0].Vals[0].AsString() != "L201" {
		t.Fatalf("rows = %v", rows)
	}
	if aspen.Null.T != 0 || !aspen.Bool(true).AsBool() {
		t.Fatal("value re-exports")
	}
}
