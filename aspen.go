// Package aspen is the public API of the ASPEN data acquisition and
// integration substrate and its SmartCIS showcase application, a
// reproduction of "SmartCIS: Integrating Digital and Physical Environments"
// (Liu et al., SIGMOD'09 demo).
//
// ASPEN integrates sensor networks, data streams, database tables and Web
// sources behind one StreamSQL interface. A federated optimizer partitions
// each query between an in-network sensor engine (minimizing radio
// messages) and a distributed stream engine (minimizing latency), per the
// paper's Figure 1 architecture.
//
// Two entry points:
//
//   - NewRuntime assembles a bare substrate: bring your own sources (see
//     examples/quickstart).
//   - NewSmartCIS builds the full intelligent-building demo: synthetic
//     Moore building, mote field, machine fleet, PDUs with scraped HTTP
//     interfaces, RFID badges, and the standard monitoring queries (see
//     examples/visitorguide).
//
// Simulations run in virtual time: drive them with the Scheduler's RunFor /
// RunUntil, which executes days of sensing in milliseconds,
// deterministically.
package aspen

import (
	"io"

	"aspen/internal/building"
	"aspen/internal/core"
	"aspen/internal/data"
	"aspen/internal/gui"
	"aspen/internal/routing"
	"aspen/internal/sensor"
	"aspen/internal/sensornet"
	"aspen/internal/smartcis"
	"aspen/internal/vtime"
)

// Core runtime API.
type (
	// Runtime is an assembled ASPEN instance: catalog, federated
	// optimizer, stream engine, optional sensor engine.
	Runtime = core.Runtime
	// RuntimeConfig configures New.
	RuntimeConfig = core.Config
	// Query is a deployed continuous query.
	Query = core.Query
)

// Data model re-exports.
type (
	// Value is one typed StreamSQL value.
	Value = data.Value
	// Tuple is one timestamped row.
	Tuple = data.Tuple
	// Schema describes a relation or stream.
	Schema = data.Schema
	// Column is one schema attribute.
	Column = data.Column
	// Relation is an in-memory stored table.
	Relation = data.Relation
)

// Time and simulation re-exports.
type (
	// Scheduler is the deterministic discrete-event clock driving
	// simulations.
	Scheduler = vtime.Scheduler
	// Time is an instant on the simulation timeline.
	Time = vtime.Time
)

// Sensor-field re-exports for custom deployments.
type (
	// SensorNetwork is the simulated mote field.
	SensorNetwork = sensornet.Network
	// SensorEngine evaluates in-network queries over a SensorNetwork.
	SensorEngine = sensor.Engine
	// SensorKind identifies a physical sensor type.
	SensorKind = sensornet.SensorKind
)

// Sensor kinds.
const (
	SensorLight       = sensornet.SensorLight
	SensorTemperature = sensornet.SensorTemperature
	SensorRFID        = sensornet.SensorRFID
)

// SmartCIS application re-exports.
type (
	// SmartCIS is the running intelligent-building deployment.
	SmartCIS = smartcis.App
	// SmartCISOptions configures NewSmartCIS.
	SmartCISOptions = smartcis.Options
	// BuildingConfig shapes the synthetic Moore building.
	BuildingConfig = building.GenConfig
	// Guidance is a route to a recommended machine.
	Guidance = smartcis.Guidance
	// Route is a path through the building's routing points.
	Route = routing.Route
	// GUIOptions controls text-GUI rendering.
	GUIOptions = gui.Options
	// Repainter coalesces live-result changes into one GUI render per
	// paint cycle.
	Repainter = gui.Repainter
)

// Value constructors.
var (
	// Int builds an integer value.
	Int = data.Int
	// Float builds a floating point value.
	Float = data.Float
	// Str builds a string value.
	Str = data.Str
	// Bool builds a boolean value.
	Bool = data.Bool
	// Null is the SQL NULL.
	Null = data.Null
)

// Col declares a schema column.
func Col(name string, t data.Type) Column { return data.Col(name, t) }

// Column types.
const (
	TInt    = data.TInt
	TFloat  = data.TFloat
	TString = data.TString
	TBool   = data.TBool
	TTime   = data.TTime
)

// NewRuntime assembles a bare ASPEN runtime. With a zero config it runs
// all-stream on a fresh virtual-time scheduler.
func NewRuntime(cfg RuntimeConfig) *Runtime { return core.New(cfg) }

// NewScheduler creates a deterministic virtual-time scheduler.
func NewScheduler() *Scheduler { return vtime.NewScheduler() }

// NewSchema declares a relation schema whose columns are qualified by rel.
func NewSchema(rel string, cols ...Column) *Schema { return data.NewSchema(rel, cols...) }

// NewStreamSchema declares a stream schema.
func NewStreamSchema(rel string, cols ...Column) *Schema {
	s := data.NewSchema(rel, cols...)
	s.IsStream = true
	return s
}

// NewRelation creates an empty stored table with the schema.
func NewRelation(schema *Schema) *Relation { return data.NewRelation(schema) }

// NewTuple builds an insert tuple at timestamp ts.
func NewTuple(ts Time, vals ...Value) Tuple { return data.NewTuple(ts, vals...) }

// NewSmartCIS builds the full SmartCIS deployment of §2/§4.
func NewSmartCIS(opts SmartCISOptions) (*SmartCIS, error) { return smartcis.New(opts) }

// RenderGUI draws one Figure 2-style frame of the deployment.
func RenderGUI(app *SmartCIS, opts GUIOptions) string { return gui.Render(app, opts) }

// NewRepainter builds a GUI repainter writing render() frames to out; wire
// query results to it with Watch and call Paint once per epoch.
func NewRepainter(out io.Writer, render func() string) *Repainter {
	return gui.NewRepainter(out, render)
}

// StatusPanel formats the live plan panel shown beside the map.
func StatusPanel(app *SmartCIS, queries map[string]string) []string {
	return gui.StatusPanel(app, queries)
}

// DefaultBuilding is the demo building: 4 labs of 6 desks, 2 offices, a
// machine room, hallway points every 100 feet.
func DefaultBuilding() BuildingConfig { return building.DefaultConfig() }
